(* Versions and alternatives: explicit snapshots, decimal classification,
   delta storage, views of old versions, alternatives, deletion, history
   navigation, schema versions (paper, §Versions). *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module History = Seed_core.History
module Item = Seed_core.Item
module View = Seed_core.View


let test_trunk_labels () =
  let db = fresh_db () in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  Alcotest.(check string) "first" "1.0" (Version_id.to_string v1);
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  let v2 = ok (DB.create_version db) in
  Alcotest.(check string) "second" "2.0" (Version_id.to_string v2);
  Alcotest.(check int) "two versions" 2 (List.length (DB.versions db));
  Alcotest.(check bool) "base" true (DB.current_base db = Some v2)

let test_view_resolution_fig4 () =
  (* Fig. 4: AlarmHandler's Description changes across versions; the view
     of version n resolves to the greatest stamp <= n *)
  let db = fresh_db () in
  let h = ok (DB.create_object db ~cls:"Action" ~name:"AlarmHandler" ()) in
  let d =
    ok
      (DB.create_sub_object db ~parent:h ~role:"Description"
         ~value:(Value.String "Handles alarms") ())
  in
  let v1 = ok (DB.create_version db) in
  check_ok "revise"
    (DB.set_value db d (Some (Value.String "Handles alarms derived from ProcessData")));
  let v2 = ok (DB.create_version db) in
  check_ok "revise again"
    (DB.set_value db d
       (Some (Value.String "Generates alarms from process data, triggers Operator Alert")));
  (* current *)
  Alcotest.(check bool) "current" true
    (DB.get_value db d
    = Some (Value.String "Generates alarms from process data, triggers Operator Alert"));
  (* version 1.0 *)
  ok (DB.select_version db (Some v1));
  Alcotest.(check bool) "v1" true (DB.get_value db d = Some (Value.String "Handles alarms"));
  (* version 2.0 *)
  ok (DB.select_version db (Some v2));
  Alcotest.(check bool) "v2" true
    (DB.get_value db d = Some (Value.String "Handles alarms derived from ProcessData"));
  ok (DB.select_version db None)

let test_unchanged_items_resolve_through () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let _v1 = ok (DB.create_version db) in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  let v2 = ok (DB.create_version db) in
  (* A was not stamped at v2 (unchanged) yet resolves in v2's view *)
  ok (DB.select_version db (Some v2));
  Alcotest.(check bool) "A visible in v2" true (DB.find_object db "A" = Some a);
  ok (DB.select_version db None)

let test_delta_storage_only_changed_items_stamped () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let b = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  let _v1 = ok (DB.create_version db) in
  check_ok "touch A" (DB.rename_object db a "A2");
  let _v2 = ok (DB.create_version db) in
  let stamps id = List.length (History.stamps_of db id) in
  Alcotest.(check int) "A has two stamps" 2 (stamps a);
  Alcotest.(check int) "B has one stamp" 1 (stamps b)

let test_items_created_later_invisible_in_old_views () =
  let db = fresh_db () in
  let _a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  let _b = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  let _v2 = ok (DB.create_version db) in
  ok (DB.select_version db (Some v1));
  Alcotest.(check (option Alcotest.reject)) "B not in v1" None (DB.find_object db "B");
  Alcotest.(check int) "one object" 1 (DB.object_count db);
  ok (DB.select_version db None)

let test_deletion_is_a_marker () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.delete db a);
  let _v2 = ok (DB.create_version db) in
  (* gone now, but still in v1's view *)
  Alcotest.(check (option Alcotest.reject)) "gone now" None (DB.find_object db "A");
  ok (DB.select_version db (Some v1));
  Alcotest.(check bool) "alive in v1" true (DB.find_object db "A" = Some a);
  ok (DB.select_version db None)

let test_updates_require_no_version_selected_semantics () =
  (* retrieval version selection does not affect updates: they go to the
     current version *)
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.select_version db (Some v1));
  check_ok "update still possible" (DB.rename_object db a "A2");
  ok (DB.select_version db None);
  Alcotest.(check bool) "applied to current" true (DB.find_object db "A2" = Some a)

let test_alternatives_branch_labels () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db a ~to_:"Data");
  let _v2 = ok (DB.create_version db) in
  (* explore an alternative from 1.0 *)
  check_ok "switch" (DB.begin_alternative db ~from_:v1 ());
  Alcotest.(check (option string)) "back to vague" (Some "Thing") (DB.class_of db a);
  ok (DB.reclassify db a ~to_:"Action");
  let alt = ok (DB.create_version db) in
  Alcotest.(check string) "branch label" "1.1" (Version_id.to_string alt);
  (* second alternative from the same base *)
  check_ok "switch again" (DB.begin_alternative db ~from_:v1 ());
  ok (DB.reclassify db a ~to_:"Data");
  let alt2 = ok (DB.create_version db) in
  Alcotest.(check string) "second branch" "1.2" (Version_id.to_string alt2);
  (* a branch of a branch *)
  check_ok "switch to 1.1" (DB.begin_alternative db ~from_:alt ());
  check_ok "tweak" (DB.rename_object db a "A2");
  let deep = ok (DB.create_version db) in
  Alcotest.(check string) "deep branch" "1.1.1" (Version_id.to_string deep)

let test_alternative_views_are_independent () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db a ~to_:"Data");
  let v2 = ok (DB.create_version db) in
  ok (DB.begin_alternative db ~from_:v1 ());
  ok (DB.reclassify db a ~to_:"Action");
  let alt = ok (DB.create_version db) in
  (* the three saved states coexist *)
  let class_at v =
    ok (DB.select_version db (Some v));
    let c = DB.class_of db a in
    ok (DB.select_version db None);
    c
  in
  Alcotest.(check (option string)) "1.0" (Some "Thing") (class_at v1);
  Alcotest.(check (option string)) "2.0" (Some "Data") (class_at v2);
  Alcotest.(check (option string)) "1.1" (Some "Action") (class_at alt)

let test_unsaved_changes_guard () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db a ~to_:"Data");
  check_err "dirty switch refused"
    (function Seed_error.Unsaved_changes _ -> true | _ -> false)
    (DB.begin_alternative db ~from_:v1 ());
  (* force discards *)
  check_ok "forced" (DB.begin_alternative db ~from_:v1 ~force:true ());
  Alcotest.(check (option string)) "discarded" (Some "Thing") (DB.class_of db a)

let test_trunk_continues_after_branching () =
  let db = fresh_db () in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  let v2 = ok (DB.create_version db) in
  ok (DB.begin_alternative db ~from_:v1 ());
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"C" ()) in
  let _alt = ok (DB.create_version db) in
  (* return to the trunk head and continue it *)
  ok (DB.begin_alternative db ~from_:v2 ());
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let v3 = ok (DB.create_version db) in
  Alcotest.(check string) "trunk continues" "3.0" (Version_id.to_string v3)

let test_delete_version () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db a ~to_:"Data");
  let v2 = ok (DB.create_version db) in
  (* cannot delete the base of the current state *)
  check_err "base in use"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.delete_version db v2);
  (* cannot delete a version with descendants *)
  check_err "has children"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.delete_version db v1);
  (* branch, then delete the abandoned trunk head *)
  ok (DB.begin_alternative db ~from_:v1 ());
  check_ok "delete leaf" (DB.delete_version db v2);
  Alcotest.(check int) "one version left" 1 (List.length (DB.versions db));
  (* stamps dropped *)
  Alcotest.(check int) "stamps dropped" 1 (List.length (History.stamps_of db a));
  check_err "cannot select deleted"
    (function Seed_error.Unknown_version _ -> true | _ -> false)
    (DB.select_version db (Some v2))

let test_history_retrieval () =
  (* "find all versions of object 'AlarmHandler', beginning with
     version 2.0" *)
  let db = fresh_db () in
  let h = ok (DB.create_object db ~cls:"Action" ~name:"AlarmHandler" ()) in
  let d = ok (DB.create_sub_object db ~parent:h ~role:"Description" ~value:(Value.String "v1") ()) in
  let _v1 = ok (DB.create_version db) in
  check_ok "2" (DB.set_value db d (Some (Value.String "v2")));
  let v2 = ok (DB.create_version db) in
  check_ok "3" (DB.set_value db d (Some (Value.String "v3")));
  let _v3 = ok (DB.create_version db) in
  let all = ok (History.versions_of_object db "AlarmHandler" ()) in
  (* the object itself was stamped only at 1.0 (unchanged after) *)
  Alcotest.(check int) "object stamps" 1 (List.length all);
  let d_all = ok (History.versions_of db d ()) in
  Alcotest.(check int) "description stamps" 3 (List.length d_all);
  let d_from2 = ok (History.versions_of db d ~from_:v2 ()) in
  Alcotest.(check int) "from 2.0" 2 (List.length d_from2);
  Alcotest.(check string) "first is 2.0" "2.0"
    (Version_id.to_string (List.hd d_from2).History.version)

let test_history_by_old_name () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"Old" ()) in
  let _v1 = ok (DB.create_version db) in
  check_ok "rename" (DB.rename_object db a "New");
  let _v2 = ok (DB.create_version db) in
  (* identity survives the rename; the historical name still finds it *)
  let entries = ok (History.versions_of_object db "Old" ()) in
  Alcotest.(check int) "two stamps" 2 (List.length entries);
  check_err "never existed"
    (function Seed_error.Unknown_object _ -> true | _ -> false)
    (History.versions_of_object db "Ghost" ())

let test_changed_between () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let _b = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  let v1 = ok (DB.create_version db) in
  check_ok "touch a" (DB.rename_object db a "A2");
  let v2 = ok (DB.create_version db) in
  let changed = ok (History.changed_between db v1 v2) in
  Alcotest.(check (list string)) "only A" [ Ident.to_string a ]
    (List.map Ident.to_string changed);
  Alcotest.(check int) "self empty" 0 (List.length (ok (History.changed_between db v2 v2)))

let test_state_in_and_version_path () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db a ~to_:"Data");
  let v2 = ok (DB.create_version db) in
  (match ok (History.state_in db a v1) with
  | Some (Item.Obj o) -> Alcotest.(check string) "v1 class" "Thing" o.Item.cls
  | _ -> Alcotest.fail "expected object state");
  Alcotest.(check (list string)) "path" [ "1.0"; "2.0" ]
    (List.map Version_id.to_string (History.version_path db v2));
  ignore v2

let test_empty_snapshot_allowed () =
  let db = fresh_db () in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let _v1 = ok (DB.create_version db) in
  Alcotest.(check bool) "clean" false (DB.is_dirty db);
  let v2 = ok (DB.create_version db) in
  Alcotest.(check string) "empty snapshot still a version" "2.0"
    (Version_id.to_string v2)

let test_transition_rules () =
  (* history-sensitive consistency (the paper's open problem): forbid
     snapshots that delete objects relative to their base version *)
  let db = fresh_db () in
  DB.add_transition_rule db "no-shrink" (fun st ~base ->
      match base with
      | None -> Ok ()
      | Some b ->
        let now = List.length (View.all_objects (View.current st)) in
        let before = List.length (View.all_objects (View.at st b)) in
        if now < before then
          Error (Seed_error.Vetoed { procedure = "no-shrink"; reason = "fewer objects" })
        else Ok ());
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let _v1 = ok (DB.create_version db) in
  ok (DB.delete db a);
  check_err "rule vetoes" is_vetoed (DB.create_version db);
  (* recover: add an object to compensate *)
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  check_ok "rule passes" (Result.map (fun _ -> ()) (DB.create_version db))

let test_schema_versions () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  (* evolve the schema: add a class *)
  let classes, assocs = Spades_tool.Spec_model.schema_defs () in
  let classes = classes @ [ Class_def.v ~super:"Thing" [ "Module" ] ] in
  check_ok "update schema" (DB.update_schema db (Schema.of_defs_exn classes assocs));
  let _m = ok (DB.create_object db ~cls:"Module" ~name:"M" ()) in
  let v2 = ok (DB.create_version db) in
  (* old versions keep their schema revision *)
  let node_of v =
    List.find
      (fun (n : Seed_core.Versioning.node) -> Version_id.equal n.Seed_core.Versioning.vid v)
      (DB.versions db)
  in
  Alcotest.(check bool) "revisions differ" true
    ((node_of v1).Seed_core.Versioning.schema_rev
    <> (node_of v2).Seed_core.Versioning.schema_rev);
  (* the old view interprets data under the old schema *)
  let old_view = ok (DB.view_at db v1) in
  Alcotest.(check bool) "old schema has no Module" true
    (Schema.find_class (View.schema old_view) "Module" = None);
  ignore a

let test_schema_update_rejected_when_data_violates () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let _t1 = ok (DB.create_sub_object db ~parent:d ~role:"Text" ()) in
  let _t2 = ok (DB.create_sub_object db ~parent:d ~role:"Text" ()) in
  (* shrink Text max to 1: existing data violates it *)
  let classes, assocs = Spades_tool.Spec_model.schema_defs () in
  let classes =
    List.map
      (fun (c : Class_def.t) ->
        if Class_def.name c = "Data.Text" then
          Class_def.v ~card:(Cardinality.between 0 1) [ "Data"; "Text" ]
        else c)
      classes
  in
  check_err "tightening refused" is_cardinality
    (DB.update_schema db (Schema.of_defs_exn classes assocs));
  (* the schema was left unchanged *)
  check_ok "third text under old schema"
    (Result.map (fun _ -> ()) (DB.create_sub_object db ~parent:d ~role:"Text" ()))

let () =
  Alcotest.run "versions"
    [
      ( "snapshots",
        [
          tc "trunk labels" test_trunk_labels;
          tc "fig 4 view resolution" test_view_resolution_fig4;
          tc "unchanged items resolve" test_unchanged_items_resolve_through;
          tc "delta storage" test_delta_storage_only_changed_items_stamped;
          tc "later items invisible" test_items_created_later_invisible_in_old_views;
          tc "deletion markers" test_deletion_is_a_marker;
          tc "updates go to current" test_updates_require_no_version_selected_semantics;
          tc "empty snapshots" test_empty_snapshot_allowed;
        ] );
      ( "alternatives",
        [
          tc "branch labels" test_alternatives_branch_labels;
          tc "independent views" test_alternative_views_are_independent;
          tc "unsaved-changes guard" test_unsaved_changes_guard;
          tc "trunk continues" test_trunk_continues_after_branching;
        ] );
      ( "deletion", [ tc "version deletion" test_delete_version ] );
      ( "history",
        [
          tc "versions of an object" test_history_retrieval;
          tc "historical names" test_history_by_old_name;
          tc "changed between" test_changed_between;
          tc "state_in / path" test_state_in_and_version_path;
        ] );
      ( "rules", [ tc "history-sensitive rules" test_transition_rules ] );
      ( "schema versions",
        [
          tc "schema evolves with versions" test_schema_versions;
          tc "incompatible schema refused" test_schema_update_rejected_when_data_violates;
        ] );
    ]
