(* Object and relationship lifecycle against the Fig. 3 schema:
   creation, composed names, retrieval by name, values, deletion. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module View = Seed_core.View
module Item = Seed_core.Item

let test_create_and_find () =
  let db = fresh_db () in
  let id = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  Alcotest.(check (option string)) "class" (Some "Data") (DB.class_of db id);
  Alcotest.(check bool) "found" true (DB.find_object db "Alarms" = Some id);
  Alcotest.(check (option string)) "full name" (Some "Alarms") (DB.full_name db id);
  Alcotest.(check bool) "exists" true (DB.exists db id);
  Alcotest.(check int) "count" 1 (DB.object_count db)

let test_unknown_class () =
  let db = fresh_db () in
  check_err "unknown class"
    (function Seed_error.Unknown_class _ -> true | _ -> false)
    (DB.create_object db ~cls:"Nope" ~name:"X" ())

let test_subclass_not_creatable_directly () =
  let db = fresh_db () in
  check_err "sub-class"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.create_object db ~cls:"Data.Text" ~name:"X" ())

let test_duplicate_name_rejected () =
  let db = fresh_db () in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  check_err "dup" is_duplicate (DB.create_object db ~cls:"Action" ~name:"Alarms" ())

let test_sub_object_composed_name () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let body =
    ok
      (DB.create_sub_object db ~parent:text ~role:"Body"
         ~value:(Value.String "Alarms are represented in an alarm display matrix")
         ())
  in
  let kw0 =
    ok
      (DB.create_sub_object db ~parent:alarms ~role:"Keywords"
         ~value:(Value.String "Alarmhandling") ())
  in
  let kw1 =
    ok
      (DB.create_sub_object db ~parent:alarms ~role:"Keywords"
         ~value:(Value.String "Display") ())
  in
  Alcotest.(check (option string)) "text name" (Some "Alarms.Text[0]")
    (DB.full_name db text);
  Alcotest.(check (option string)) "body name" (Some "Alarms.Text[0].Body")
    (DB.full_name db body);
  Alcotest.(check (option string)) "kw0" (Some "Alarms.Keywords[0]")
    (DB.full_name db kw0);
  Alcotest.(check (option string)) "kw1" (Some "Alarms.Keywords[1]")
    (DB.full_name db kw1);
  (* resolve goes the other way *)
  Alcotest.(check bool) "resolve body" true
    (DB.resolve db "Alarms.Text[0].Body" = Some body);
  Alcotest.(check bool) "resolve kw" true
    (DB.resolve db "Alarms.Keywords[1]" = Some kw1);
  Alcotest.(check (option Alcotest.reject)) "unresolved" None
    (DB.resolve db "Alarms.Text[0].Nope")

let test_single_role_has_no_index () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let d =
    ok
      (DB.create_sub_object db ~parent:alarms ~role:"Description"
         ~value:(Value.String "the alarm store") ())
  in
  Alcotest.(check (option string)) "no index" (Some "Alarms.Description")
    (DB.full_name db d);
  check_err "explicit index refused"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.create_sub_object db ~parent:alarms ~role:"Revised" ~index:0 ())

let test_index_auto_assignment_fills_gaps () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let k0 = ok (DB.create_sub_object db ~parent:alarms ~role:"Keywords" ~value:(Value.String "a") ()) in
  let _k1 = ok (DB.create_sub_object db ~parent:alarms ~role:"Keywords" ~value:(Value.String "b") ()) in
  let k5 = ok (DB.create_sub_object db ~parent:alarms ~role:"Keywords" ~index:5 ~value:(Value.String "f") ()) in
  ok (DB.delete db k0);
  let k0' = ok (DB.create_sub_object db ~parent:alarms ~role:"Keywords" ~value:(Value.String "a2") ()) in
  Alcotest.(check (option string)) "fills gap" (Some "Alarms.Keywords[0]")
    (DB.full_name db k0');
  Alcotest.(check (option string)) "explicit kept" (Some "Alarms.Keywords[5]")
    (DB.full_name db k5);
  check_err "index collision" is_duplicate
    (DB.create_sub_object db ~parent:alarms ~role:"Keywords" ~index:5 ())

let test_values () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let d = ok (DB.create_sub_object db ~parent:alarms ~role:"Description" ()) in
  Alcotest.(check (option Alcotest.reject)) "undefined" None (DB.get_value db d);
  check_ok "set" (DB.set_value db d (Some (Value.String "desc")));
  Alcotest.(check bool) "read back" true
    (DB.get_value db d = Some (Value.String "desc"));
  check_ok "clear" (DB.set_value db d None);
  Alcotest.(check (option Alcotest.reject)) "cleared" None (DB.get_value db d)

let test_rename () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let _b = ok (DB.create_object db ~cls:"Data" ~name:"Events" ()) in
  check_ok "rename" (DB.rename_object db a "Alerts");
  Alcotest.(check bool) "new name" true (DB.find_object db "Alerts" = Some a);
  Alcotest.(check (option Alcotest.reject)) "old gone" None (DB.find_object db "Alarms");
  check_err "clash" is_duplicate (DB.rename_object db a "Events");
  check_err "empty" (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.rename_object db a "")

let test_relationship_lifecycle () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let handler = ok (DB.create_object db ~cls:"Action" ~name:"AlarmHandler" ()) in
  let rel =
    ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ alarms; handler ] ())
  in
  Alcotest.(check (option string)) "assoc" (Some "Access") (DB.assoc_of db rel);
  Alcotest.(check bool) "endpoints" true
    (DB.endpoints db rel = [ alarms; handler ]);
  Alcotest.(check bool) "listed for data" true
    (List.mem rel (DB.relationships db alarms));
  Alcotest.(check bool) "listed for action" true
    (List.mem rel (DB.relationships db handler));
  ok (DB.delete db rel);
  Alcotest.(check (list Alcotest.reject)) "gone" [] (DB.relationships db alarms)

let test_relationship_named_bindings () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let handler = ok (DB.create_object db ~cls:"Action" ~name:"AlarmHandler" ()) in
  let rel =
    ok
      (DB.create_relationship_named db ~assoc:"Access"
         ~bindings:[ ("by", handler); ("from", alarms) ]
         ())
  in
  (* named bindings are order-independent; endpoints are positional *)
  Alcotest.(check bool) "ordered" true (DB.endpoints db rel = [ alarms; handler ]);
  check_err "missing role"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.create_relationship_named db ~assoc:"Access"
       ~bindings:[ ("from", alarms) ]
       ())

let test_delete_cascades () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let handler = ok (DB.create_object db ~cls:"Action" ~name:"AlarmHandler" ()) in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let body = ok (DB.create_sub_object db ~parent:text ~role:"Body" ~value:(Value.String "b") ()) in
  let rel = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ alarms; handler ] ()) in
  ok (DB.delete db alarms);
  Alcotest.(check bool) "object gone" false (DB.exists db alarms);
  Alcotest.(check bool) "sub gone" false (DB.exists db text);
  Alcotest.(check bool) "deep sub gone" false (DB.exists db body);
  Alcotest.(check bool) "rel gone" false (DB.exists db rel);
  Alcotest.(check bool) "other endpoint kept" true (DB.exists db handler);
  Alcotest.(check (option Alcotest.reject)) "name free" None (DB.find_object db "Alarms");
  (* logical deletion: the name can be reused *)
  let alarms2 = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  Alcotest.(check bool) "name reused" true (DB.find_object db "Alarms" = Some alarms2)

let test_delete_sub_object_only () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let _body = ok (DB.create_sub_object db ~parent:text ~role:"Body" ~value:(Value.String "b") ()) in
  ok (DB.delete db text);
  Alcotest.(check bool) "parent kept" true (DB.exists db alarms);
  Alcotest.(check (list Alcotest.reject)) "children gone" [] (DB.children db alarms)

let test_delete_twice_fails () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  ok (DB.delete db a);
  check_err "already deleted"
    (function Seed_error.Unknown_item _ -> true | _ -> false)
    (DB.delete db a)

let test_children_listing () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let t0 = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let t1 = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let d = ok (DB.create_sub_object db ~parent:alarms ~role:"Description" ()) in
  Alcotest.(check int) "three children" 3 (List.length (DB.children db alarms));
  Alcotest.(check bool) "all there" true
    (List.for_all (fun c -> List.mem c (DB.children db alarms)) [ t0; t1; d ])

let test_view_all_objects () =
  let db = fresh_db () in
  let _ = with_objects db [ ("A", "Data"); ("B", "Action"); ("C", "Thing") ] in
  let _p = ok (DB.create_object db ~cls:"Data" ~name:"P" ~pattern:true ()) in
  let v = DB.view db in
  Alcotest.(check int) "normals" 3 (List.length (View.all_objects v));
  Alcotest.(check int) "patterns" 1 (List.length (View.all_patterns v))

let test_endpoints_must_be_independent () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let handler = ok (DB.create_object db ~cls:"Action" ~name:"H" ()) in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  check_err "sub-object endpoint"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.create_relationship db ~assoc:"Access" ~endpoints:[ text; handler ] ())

let test_arity_checked () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  check_err "one endpoint"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.create_relationship db ~assoc:"Access" ~endpoints:[ alarms ] ())

let () =
  Alcotest.run "objects"
    [
      ( "objects",
        [
          tc "create and find" test_create_and_find;
          tc "unknown class" test_unknown_class;
          tc "sub-class not directly creatable" test_subclass_not_creatable_directly;
          tc "duplicate names" test_duplicate_name_rejected;
          tc "rename" test_rename;
          tc "values" test_values;
          tc "view filters patterns" test_view_all_objects;
        ] );
      ( "sub-objects",
        [
          tc "composed names (fig 1)" test_sub_object_composed_name;
          tc "single roles unindexed" test_single_role_has_no_index;
          tc "index auto-assignment" test_index_auto_assignment_fills_gaps;
          tc "children listing" test_children_listing;
        ] );
      ( "relationships",
        [
          tc "lifecycle" test_relationship_lifecycle;
          tc "named bindings" test_relationship_named_bindings;
          tc "independent endpoints only" test_endpoints_must_be_independent;
          tc "arity" test_arity_checked;
        ] );
      ( "deletion",
        [
          tc "cascade" test_delete_cascades;
          tc "sub-object only" test_delete_sub_object_only;
          tc "double delete" test_delete_twice_fails;
        ] );
    ]
