(* Consistency information is checked on every update: membership,
   maximum cardinalities, ACYCLIC, value types, attached procedures
   (paper, §Managing vague and incomplete information). *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module Event = Seed_core.Event
module Item = Seed_core.Item
module Db_state = Seed_core.Db_state

let test_max_cardinality_sub_objects () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  (* Keywords is 0..8 *)
  for i = 0 to 7 do
    ignore
      (ok
         (DB.create_sub_object db ~parent:a ~role:"Keywords"
            ~value:(Value.String (string_of_int i)) ()))
  done;
  check_err "ninth keyword" is_cardinality
    (DB.create_sub_object db ~parent:a ~role:"Keywords" ~value:(Value.String "x") ());
  (* Description is 0..1 *)
  let _ = ok (DB.create_sub_object db ~parent:a ~role:"Description" ()) in
  check_err "second description" is_duplicate
    (DB.create_sub_object db ~parent:a ~role:"Description" ())

let test_max_cardinality_after_delete () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let first = ok (DB.create_sub_object db ~parent:a ~role:"Description" ()) in
  ok (DB.delete db first);
  (* logical deletion frees the slot *)
  check_ok "recreate" (DB.create_sub_object db ~parent:a ~role:"Description" ())

let test_membership_endpoint_classes () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let t = ok (DB.create_object db ~cls:"Thing" ~name:"T" ()) in
  (* Access relates Data to Action *)
  check_ok "ok" (DB.create_relationship db ~assoc:"Access" ~endpoints:[ d; a ] ());
  check_err "swapped" is_membership
    (DB.create_relationship db ~assoc:"Access" ~endpoints:[ a; d ] ());
  (* a Thing is not yet a Data: the paper's example (1) — the vague
     dataflow cannot be stored against the unrefined object *)
  check_err "thing too vague" is_membership
    (DB.create_relationship db ~assoc:"Access" ~endpoints:[ t; a ] ())

let test_specialized_membership () =
  let db = fresh_db () in
  let i = ok (DB.create_object db ~cls:"InputData" ~name:"I" ()) in
  let o = ok (DB.create_object db ~cls:"OutputData" ~name:"O" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  (* InputData is a Data: generalized association accepts it *)
  check_ok "input via access"
    (DB.create_relationship db ~assoc:"Access" ~endpoints:[ i; a ] ());
  check_ok "read wants input"
    (DB.create_relationship db ~assoc:"Read" ~endpoints:[ i; a ] ());
  check_err "read refuses output" is_membership
    (DB.create_relationship db ~assoc:"Read" ~endpoints:[ o; a ] ());
  check_ok "write wants output"
    (DB.create_relationship db ~assoc:"Write" ~endpoints:[ o; a ] ())

let test_participation_max () =
  (* contained: each action sits in at most one container *)
  let db = fresh_db () in
  let child = ok (DB.create_object db ~cls:"Action" ~name:"Child" ()) in
  let c1 = ok (DB.create_object db ~cls:"Action" ~name:"C1" ()) in
  let c2 = ok (DB.create_object db ~cls:"Action" ~name:"C2" ()) in
  check_ok "first container"
    (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ child; c1 ] ());
  check_err "second container" is_cardinality
    (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ child; c2 ] ())

let test_participation_max_counts_specializations () =
  (* a custom schema where the generalized association has a max bound:
     specializations must count against it *)
  let schema =
    Schema.of_defs_exn
      [
        Class_def.v [ "D" ];
        Class_def.v [ "A" ];
      ]
      [
        Assoc_def.v "Link"
          [
            Assoc_def.role ~card:(Cardinality.between 0 1) "from" "D";
            Assoc_def.role "by" "A";
          ];
        Assoc_def.v ~super:"Link" "Strong"
          [ Assoc_def.role "from" "D"; Assoc_def.role "by" "A" ];
        Assoc_def.v ~super:"Link" "Weak"
          [ Assoc_def.role "from" "D"; Assoc_def.role "by" "A" ];
      ]
  in
  let db = DB.create schema in
  let d = ok (DB.create_object db ~cls:"D" ~name:"d" ()) in
  let a = ok (DB.create_object db ~cls:"A" ~name:"a" ()) in
  check_ok "strong" (DB.create_relationship db ~assoc:"Strong" ~endpoints:[ d; a ] ());
  (* a Weak would be the second Link of d *)
  check_err "weak counts against Link max" is_cardinality
    (DB.create_relationship db ~assoc:"Weak" ~endpoints:[ d; a ] ())

let test_acyclic () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let b = ok (DB.create_object db ~cls:"Action" ~name:"B" ()) in
  let c = ok (DB.create_object db ~cls:"Action" ~name:"C" ()) in
  check_ok "a in b" (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ a; b ] ());
  check_ok "b in c" (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ b; c ] ());
  check_err "c in a closes cycle" is_cycle
    (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ c; a ] ());
  (* self loop on a fresh node (so the participation bound stays out of
     the way and the cycle check itself fires) *)
  let d = ok (DB.create_object db ~cls:"Action" ~name:"D" ()) in
  check_err "self loop" is_cycle
    (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ d; d ] ())

let test_acyclic_after_delete () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let b = ok (DB.create_object db ~cls:"Action" ~name:"B" ()) in
  let r = ok (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ a; b ] ()) in
  ok (DB.delete db r);
  check_ok "reverse edge fine after delete"
    (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ b; a ] ())

let test_value_type_enforced () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  check_err "int into string" is_type
    (DB.create_sub_object db ~parent:a ~role:"Description" ~value:(Value.Int 3) ());
  check_err "bad enum" is_type
    (DB.create_sub_object db ~parent:a ~role:"ErrorHandling"
       ~value:(Value.Enum "explode") ());
  check_ok "good enum"
    (DB.create_sub_object db ~parent:a ~role:"ErrorHandling"
       ~value:(Value.Enum "repeat") ());
  (* Text carries no content *)
  let d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  check_err "value on contentless class" is_type
    (DB.create_sub_object db ~parent:d ~role:"Text" ~value:(Value.String "x") ())

let test_set_value_checks_type () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let d = ok (DB.create_sub_object db ~parent:a ~role:"Description" ()) in
  check_err "wrong type" is_type (DB.set_value db d (Some (Value.Int 3)));
  check_ok "right type" (DB.set_value db d (Some (Value.String "ok")))

(* --- re-classification (the vague-data operation) ------------------- *)

let test_reclassify_down_and_up () =
  let db = fresh_db () in
  let t = ok (DB.create_object db ~cls:"Thing" ~name:"Alarms" ()) in
  check_ok "thing -> data" (DB.reclassify db t ~to_:"Data");
  Alcotest.(check (option string)) "now data" (Some "Data") (DB.class_of db t);
  check_ok "data -> output" (DB.reclassify db t ~to_:"OutputData");
  check_ok "output -> data (vaguer again)" (DB.reclassify db t ~to_:"Data");
  check_ok "data -> thing" (DB.reclassify db t ~to_:"Thing")

let test_reclassify_other_hierarchy () =
  let schema =
    Schema.of_defs_exn
      [ Class_def.v [ "A" ]; Class_def.v [ "B" ] ]
      []
  in
  let db = DB.create schema in
  let a = ok (DB.create_object db ~cls:"A" ~name:"x" ()) in
  check_err "different hierarchy"
    (function Seed_error.Not_in_generalization _ -> true | _ -> false)
    (DB.reclassify db a ~to_:"B")

let test_reclassify_sideways_with_rels () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"InputData" ~name:"D" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let _ = ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ d; a ] ()) in
  (* Read requires InputData; the relationship pins the object's class
     in both directions *)
  check_err "read pins against sideways move" is_membership
    (DB.reclassify db d ~to_:"OutputData");
  check_err "read pins against generalizing" is_membership
    (DB.reclassify db d ~to_:"Data");
  (* make the relationship vaguer first, then the object may follow *)
  let rel = List.hd (DB.relationships db d) in
  check_ok "generalize rel" (DB.reclassify db rel ~to_:"Access");
  check_ok "now the object can generalize" (DB.reclassify db d ~to_:"Data")

let test_reclassify_up_with_children () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let _text = ok (DB.create_sub_object db ~parent:d ~role:"Text" ()) in
  (* Thing has no Text sub-class *)
  check_err "text blocks generalization" is_membership
    (DB.reclassify db d ~to_:"Thing");
  (* inherited Thing children never block *)
  let d2 = ok (DB.create_object db ~cls:"Data" ~name:"D2" ()) in
  let _ = ok (DB.create_sub_object db ~parent:d2 ~role:"Description" ()) in
  check_ok "description fine" (DB.reclassify db d2 ~to_:"Thing")

let test_reclassify_relationship () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"InputData" ~name:"D" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let r = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ d; a ] ()) in
  check_ok "specialize" (DB.reclassify db r ~to_:"Read");
  Alcotest.(check (option string)) "read" (Some "Read") (DB.assoc_of db r);
  check_ok "generalize back" (DB.reclassify db r ~to_:"Access");
  (* endpoint class forbids Write *)
  check_err "write needs output" is_membership (DB.reclassify db r ~to_:"Write");
  check_err "foreign hierarchy"
    (function Seed_error.Not_in_generalization _ -> true | _ -> false)
    (DB.reclassify db r ~to_:"Contained")

let test_reclassify_fig3_walkthrough () =
  (* the paper's full §Vague data walkthrough *)
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Thing" ~name:"Alarms" ()) in
  let sensor = ok (DB.create_object db ~cls:"Thing" ~name:"Sensor" ()) in
  (* "we know more: Alarms is a data object accessed by action Sensor" *)
  check_ok "alarms -> data" (DB.reclassify db alarms ~to_:"Data");
  check_ok "sensor -> action" (DB.reclassify db sensor ~to_:"Action");
  let access =
    ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ alarms; sensor ] ())
  in
  (* "Alarms is an output": specialize object, then the relationship *)
  check_ok "alarms -> output" (DB.reclassify db alarms ~to_:"OutputData");
  check_ok "access -> write" (DB.reclassify db access ~to_:"Write");
  Alcotest.(check (option string)) "write" (Some "Write") (DB.assoc_of db access)

(* --- attached procedures ------------------------------------------- *)

let schema_with_proc () =
  Schema.of_defs_exn
    [
      Class_def.v ~procedures:[ "audit" ] [ "Doc" ];
      Class_def.v ~card:Cardinality.opt ~content:Value_type.Int
        [ "Doc"; "Pages" ];
    ]
    []

let test_procedure_must_be_registered () =
  let db = DB.create (schema_with_proc ()) in
  check_err "unregistered"
    (function Seed_error.Unknown_procedure _ -> true | _ -> false)
    (DB.create_object db ~cls:"Doc" ~name:"D" ())

let test_procedure_observes_events () =
  let db = DB.create (schema_with_proc ()) in
  let events = ref [] in
  DB.register_procedure db "audit" (fun _ e ->
      events := e :: !events;
      Ok ());
  let d = ok (DB.create_object db ~cls:"Doc" ~name:"D" ()) in
  check_ok "rename" (DB.rename_object db d "D2");
  check_ok "delete" (DB.delete db d);
  let kinds =
    List.rev_map
      (function
        | Event.Created _ -> "created"
        | Event.Renamed _ -> "renamed"
        | Event.Deleted _ -> "deleted"
        | _ -> "other")
      !events
  in
  Alcotest.(check (list string)) "sequence" [ "created"; "renamed"; "deleted" ] kinds

let test_procedure_veto_rolls_back () =
  let db = DB.create (schema_with_proc ()) in
  DB.register_procedure db "audit" (fun db e ->
      match e with
      | Event.Value_updated { id; _ } -> (
        (* the complex integrity constraint of the paper: page counts
           must stay below 100 *)
        match DB.get_value (Seed_core.Database.of_raw db) id with
        | Some (Value.Int n) when n >= 100 ->
          Error (Seed_error.Vetoed { procedure = "audit"; reason = "too long" })
        | _ -> Ok ())
      | _ -> Ok ());
  let d = ok (DB.create_object db ~cls:"Doc" ~name:"D" ()) in
  let pages = ok (DB.create_sub_object db ~parent:d ~role:"Pages" ~value:(Value.Int 10) ()) in
  check_ok "small update" (DB.set_value db pages (Some (Value.Int 50)));
  check_err "vetoed" is_vetoed (DB.set_value db pages (Some (Value.Int 100)));
  (* the update was rolled back *)
  Alcotest.(check bool) "rolled back" true
    (DB.get_value db pages = Some (Value.Int 50))

let test_procedure_veto_rolls_back_creation () =
  let db = DB.create (schema_with_proc ()) in
  let allow = ref true in
  DB.register_procedure db "audit" (fun _ _ ->
      if !allow then Ok ()
      else Error (Seed_error.Vetoed { procedure = "audit"; reason = "no" }));
  let _d = ok (DB.create_object db ~cls:"Doc" ~name:"D" ()) in
  allow := false;
  check_err "creation vetoed" is_vetoed (DB.create_object db ~cls:"Doc" ~name:"E" ());
  Alcotest.(check (option Alcotest.reject)) "not inserted" None (DB.find_object db "E");
  allow := true;
  check_ok "name still free" (Result.map (fun _ -> ()) (DB.create_object db ~cls:"Doc" ~name:"E" ()))

let test_procedure_runs_along_generalization () =
  let schema =
    Schema.of_defs_exn
      [
        Class_def.v ~procedures:[ "base" ] [ "Base" ];
        Class_def.v ~super:"Base" ~procedures:[ "derived" ] [ "Derived" ];
      ]
      []
  in
  let db = DB.create schema in
  let hits = ref [] in
  DB.register_procedure db "base" (fun _ _ -> hits := "base" :: !hits; Ok ());
  DB.register_procedure db "derived" (fun _ _ -> hits := "derived" :: !hits; Ok ());
  let _ = ok (DB.create_object db ~cls:"Derived" ~name:"X" ()) in
  Alcotest.(check (list string)) "both ran (own first)" [ "derived"; "base" ]
    (List.rev !hits)

let () =
  Alcotest.run "consistency"
    [
      ( "maximum cardinalities",
        [
          tc "sub-object bounds" test_max_cardinality_sub_objects;
          tc "slots freed by delete" test_max_cardinality_after_delete;
          tc "participation bound" test_participation_max;
          tc "generalized participation" test_participation_max_counts_specializations;
        ] );
      ( "membership",
        [
          tc "endpoint classes" test_membership_endpoint_classes;
          tc "specialized associations" test_specialized_membership;
          tc "value types" test_value_type_enforced;
          tc "set_value" test_set_value_checks_type;
        ] );
      ( "acyclic",
        [ tc "cycles refused" test_acyclic; tc "delete frees" test_acyclic_after_delete ] );
      ( "reclassify",
        [
          tc "down and up" test_reclassify_down_and_up;
          tc "foreign hierarchy" test_reclassify_other_hierarchy;
          tc "relationships pin classes" test_reclassify_sideways_with_rels;
          tc "children pin classes" test_reclassify_up_with_children;
          tc "relationship reclassification" test_reclassify_relationship;
          tc "fig 3 walkthrough" test_reclassify_fig3_walkthrough;
        ] );
      ( "attached procedures",
        [
          tc "must be registered" test_procedure_must_be_registered;
          tc "observe events" test_procedure_observes_events;
          tc "veto rolls back update" test_procedure_veto_rolls_back;
          tc "veto rolls back creation" test_procedure_veto_rolls_back_creation;
          tc "generalization chain" test_procedure_runs_along_generalization;
        ] );
    ]
