(* Durable storage: snapshot/journal roundtrips, sessions, crash
   recovery, verification on load. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module Persist = Seed_core.Persist
module History = Seed_core.History

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seed_persist_%d_%d" (Unix.getpid ()) !counter)

let populated () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let handler = ok (DB.create_object db ~cls:"Action" ~name:"AlarmHandler" ()) in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let _body =
    ok (DB.create_sub_object db ~parent:text ~role:"Body" ~value:(Value.String "b") ())
  in
  let _rel = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ alarms; handler ] ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db alarms ~to_:"OutputData");
  let _v2 = ok (DB.create_version db) in
  let p = ok (DB.create_object db ~cls:"Data" ~name:"Template" ~pattern:true ()) in
  let _ = ok (DB.create_sub_object db ~parent:p ~role:"Description" ~value:(Value.String "std") ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:p ~inheritor:alarms);
  (db, alarms, v1)

let same_shape db db2 =
  Alcotest.(check int) "objects" (DB.object_count db) (DB.object_count db2);
  Alcotest.(check int) "versions" (List.length (DB.versions db))
    (List.length (DB.versions db2));
  Alcotest.(check bool) "base" true (DB.current_base db = DB.current_base db2)

let test_encode_decode_roundtrip () =
  let db, alarms, v1 = populated () in
  let db2 = ok (Persist.decode_db (Persist.encode_db db)) in
  same_shape db db2;
  let alarms2 = Option.get (DB.find_object db2 "Alarms") in
  Alcotest.(check (option string)) "class survives" (Some "OutputData")
    (DB.class_of db2 alarms2);
  (* version views survive *)
  ok (DB.select_version db2 (Some v1));
  Alcotest.(check (option string)) "old class" (Some "Data") (DB.class_of db2 alarms2);
  ok (DB.select_version db2 None);
  (* pattern inheritance survives *)
  let p2 = Option.get (DB.find_pattern db2 "Template") in
  Alcotest.(check bool) "inheritors" true (DB.inheritors db2 p2 <> []);
  (* identity is preserved *)
  Alcotest.(check bool) "ids stable" true (Ident.equal alarms alarms2);
  (* dirty state survives: the inherit was not snapshotted *)
  Alcotest.(check bool) "still dirty" true (DB.is_dirty db2)

let test_save_load () =
  let dir = tmp_dir () in
  let db, _, _ = populated () in
  check_ok "save" (Persist.save db ~dir);
  let db2 = ok (Persist.load ~dir ()) in
  same_shape db db2

let test_load_missing () =
  check_err "missing dir content"
    (function Seed_error.Io_error _ -> true | _ -> false)
    (Persist.load ~dir:(tmp_dir ()) ())

let test_session_flush_and_reopen () =
  let dir = tmp_dir () in
  let s = ok (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ()) in
  let db = Persist.Session.db s in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  check_ok "flush1" (Persist.Session.flush s);
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"B" ()) in
  check_ok "flush2" (Persist.Session.flush s);
  check_ok "value" (Result.map (fun _ -> ())
    (DB.create_sub_object db ~parent:a ~role:"Description" ~value:(Value.String "d") ()));
  check_ok "flush3" (Persist.Session.flush s);
  Persist.Session.close s;
  (* reopen: journal replay rebuilds everything *)
  let s2 = ok (Persist.Session.open_ ~dir ()) in
  let db2 = Persist.Session.db s2 in
  Alcotest.(check int) "objects" 2 (DB.object_count db2);
  Alcotest.(check bool) "sub-object too" true
    (DB.resolve db2 "A.Description" <> None);
  Persist.Session.close s2

let test_session_flush_writes_only_changes () =
  let dir = tmp_dir () in
  let s = ok (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ()) in
  let db = Persist.Session.db s in
  for i = 1 to 10 do
    ignore (ok (DB.create_object db ~cls:"Data" ~name:(Printf.sprintf "O%d" i) ()))
  done;
  check_ok "flush" (Persist.Session.flush s);
  let after_first = Persist.Session.journal_records s in
  (* one more object -> one more item record (plus one meta record) *)
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Extra" ()) in
  check_ok "flush2" (Persist.Session.flush s);
  let after_second = Persist.Session.journal_records s in
  Alcotest.(check int) "incremental" 2 (after_second - after_first);
  (* no changes -> no records *)
  check_ok "noop flush" (Persist.Session.flush s);
  Alcotest.(check int) "nothing written" after_second (Persist.Session.journal_records s);
  Persist.Session.close s

let test_session_compact () =
  let dir = tmp_dir () in
  let s = ok (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ()) in
  let db = Persist.Session.db s in
  for i = 1 to 5 do
    ignore (ok (DB.create_object db ~cls:"Data" ~name:(Printf.sprintf "O%d" i) ()))
  done;
  check_ok "flush" (Persist.Session.flush s);
  check_ok "compact" (Persist.Session.compact s);
  Alcotest.(check int) "journal empty" 0 (Persist.Session.journal_records s);
  Persist.Session.close s;
  let s2 = ok (Persist.Session.open_ ~dir ()) in
  Alcotest.(check int) "snapshot has everything" 5
    (DB.object_count (Persist.Session.db s2));
  Persist.Session.close s2

let test_session_requires_schema_for_fresh_dir () =
  check_err "no schema"
    (function Seed_error.Io_error _ -> true | _ -> false)
    (Persist.Session.open_ ~dir:(tmp_dir ()) ())

let test_session_survives_torn_journal_tail () =
  let dir = tmp_dir () in
  let s = ok (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ()) in
  let db = Persist.Session.db s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  check_ok "flush" (Persist.Session.flush s);
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"B" ()) in
  check_ok "flush" (Persist.Session.flush s);
  Persist.Session.close s;
  (* tear the journal tail: B's records get cut *)
  let path = Filename.concat dir "journal.log" in
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 5);
  Unix.close fd;
  let s2 = ok (Persist.Session.open_ ~dir ()) in
  let db2 = Persist.Session.db s2 in
  Alcotest.(check bool) "A recovered" true (DB.find_object db2 "A" <> None);
  Persist.Session.close s2

let test_versions_survive_roundtrip () =
  let dir = tmp_dir () in
  let db, _, v1 = populated () in
  (* branch before saving *)
  ok (DB.begin_alternative db ~from_:v1 ~force:true ());
  let alarms = Option.get (DB.find_object db "Alarms") in
  ok (DB.reclassify db alarms ~to_:"InputData");
  let alt = ok (DB.create_version db) in
  check_ok "save" (Persist.save db ~dir);
  let db2 = ok (Persist.load ~dir ()) in
  Alcotest.(check string) "branch label kept" "1.1" (Version_id.to_string alt);
  ok (DB.select_version db2 (Some alt));
  let a2 = Option.get (DB.find_object db2 "Alarms") in
  Alcotest.(check (option string)) "branch content" (Some "InputData")
    (DB.class_of db2 a2);
  ok (DB.select_version db2 None);
  (* new versions continue the numbering after reload *)
  ok (DB.reclassify db2 a2 ~to_:"Data");
  let next = ok (DB.create_version db2) in
  Alcotest.(check string) "numbering continues" "1.1.1" (Version_id.to_string next)

let test_history_survives_roundtrip () =
  let db, alarms, _ = populated () in
  let db2 = ok (Persist.decode_db (Persist.encode_db db)) in
  let h1 = List.length (History.stamps_of db alarms) in
  let h2 = List.length (History.stamps_of db2 alarms) in
  Alcotest.(check int) "stamps preserved" h1 h2

let test_decode_rejects_garbage () =
  check_err "garbage" (function Seed_error.Corrupt _ -> true | _ -> false)
    (Persist.decode_db "not a database");
  check_err "empty" (function Seed_error.Corrupt _ -> true | _ -> false)
    (Persist.decode_db "")

let test_schema_revisions_roundtrip () =
  let db = fresh_db () in
  let classes, assocs = Spades_tool.Spec_model.schema_defs () in
  let classes' = classes @ [ Class_def.v ~super:"Thing" [ "Module" ] ] in
  check_ok "evolve" (DB.update_schema db (Schema.of_defs_exn classes' assocs));
  let db2 = ok (Persist.decode_db (Persist.encode_db db)) in
  Alcotest.(check int) "revision" (Schema.revision (DB.schema db))
    (Schema.revision (DB.schema db2));
  Alcotest.(check bool) "module class there" true
    (Schema.find_class (DB.schema db2) "Module" <> None);
  (* both revisions retrievable *)
  Alcotest.(check bool) "old revision kept" true
    (Seed_core.Db_state.schema_at_revision (DB.raw db2) 1 <> None)

let () =
  Alcotest.run "persist"
    [
      ( "roundtrip",
        [
          tc "encode/decode" test_encode_decode_roundtrip;
          tc "save/load" test_save_load;
          tc "missing" test_load_missing;
          tc "versions & branches" test_versions_survive_roundtrip;
          tc "history stamps" test_history_survives_roundtrip;
          tc "schema revisions" test_schema_revisions_roundtrip;
          tc "garbage rejected" test_decode_rejects_garbage;
        ] );
      ( "session",
        [
          tc "flush and reopen" test_session_flush_and_reopen;
          tc "incremental flush" test_session_flush_writes_only_changes;
          tc "compaction" test_session_compact;
          tc "fresh dir needs schema" test_session_requires_schema_for_fresh_dir;
          tc "torn tail recovery" test_session_survives_torn_journal_tail;
        ] );
    ]
