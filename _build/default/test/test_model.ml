(* Model-based random testing of the database engine.

   Random operation sequences run against the Fig. 3 schema; individual
   operations may legitimately fail (that is the consistency checker
   doing its job) — what must NEVER break are the global invariants:

   1. the current state passes the full consistency sweep;
   2. the name index agrees with a scan of the item table;
   3. saved versions are immutable: the fingerprint of every saved
      version, taken when it was created, matches forever after;
   4. encode/decode is lossless for the current state and for every
      saved version. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module View = Seed_core.View
module Item = Seed_core.Item

(* ------------------------------------------------------------------ *)
(* Symbolic operations                                                  *)
(* ------------------------------------------------------------------ *)

type op =
  | Create of int * string  (* name seed, class *)
  | CreatePattern of int
  | CreateSub of int * string  (* parent pick, role *)
  | CreateRel of int * int * string  (* endpoint picks, assoc *)
  | SetValue of int * string option  (* item pick *)
  | Reclassify of int * string
  | Delete of int
  | Inherit of int * int
  | Snapshot
  | Branch of int  (* version pick *)

let classes = [ "Thing"; "Data"; "Action"; "InputData"; "OutputData" ]
let roles = [ "Description"; "Keywords"; "Text"; "Revised" ]
let assocs = [ "Access"; "Read"; "Write"; "Contained" ]

let op_gen =
  let open QCheck2.Gen in
  frequency
    [
      (4, map2 (fun i c -> Create (i, c)) (int_bound 40) (oneofl classes));
      (1, map (fun i -> CreatePattern i) (int_bound 40));
      (3, map2 (fun p r -> CreateSub (p, r)) (int_bound 40) (oneofl roles));
      ( 3,
        map3
          (fun a b s -> CreateRel (a, b, s))
          (int_bound 40) (int_bound 40) (oneofl assocs) );
      ( 2,
        map2
          (fun i v -> SetValue (i, v))
          (int_bound 40)
          (opt (map (fun s -> s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6))))
      );
      (2, map2 (fun i c -> Reclassify (i, c)) (int_bound 40) (oneofl classes));
      (1, map (fun i -> Delete i) (int_bound 40));
      (1, map2 (fun p i -> Inherit (p, i)) (int_bound 40) (int_bound 40));
      (1, return Snapshot);
      (1, map (fun i -> Branch i) (int_bound 8));
    ]

let ops_gen = QCheck2.Gen.(list_size (int_range 0 80) op_gen)

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

type env = {
  db : DB.t;
  mutable objects : Ident.t list;  (* independent objects ever created *)
  mutable subs : Ident.t list;
  mutable patterns : Ident.t list;
  mutable versions : Version_id.t list;
  mutable fingerprints : (Version_id.t * string) list;
}

let pick xs i = match xs with [] -> None | _ -> Some (List.nth xs (i mod List.length xs))

let fingerprint_view v =
  let buf = Buffer.create 256 in
  let items =
    Seed_core.Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it -> it :: acc)
    |> List.sort (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)
  in
  List.iter
    (fun (it : Item.t) ->
      match View.state v it with
      | None -> ()
      | Some (Item.Obj o) ->
        Buffer.add_string buf
          (Printf.sprintf "O%d:%s:%s:%s:%b:%b:%s;" (Ident.to_int it.Item.id)
             (Option.value o.Item.name ~default:"-")
             o.Item.cls
             (match o.Item.value with Some v -> Value.to_string v | None -> "-")
             o.Item.pattern o.Item.deleted
             (String.concat ","
                (List.map (fun i -> string_of_int (Ident.to_int i)) o.Item.inherits)))
      | Some (Item.Rel r) ->
        Buffer.add_string buf
          (Printf.sprintf "R%d:%s:%s:%b:%b;" (Ident.to_int it.Item.id)
             r.Item.assoc
             (String.concat ","
                (List.map (fun i -> string_of_int (Ident.to_int i)) r.Item.endpoints))
             r.Item.rel_pattern r.Item.rel_deleted))
    items;
  Buffer.contents buf

let apply env op =
  let ignore_result (r : (_, Seed_error.t) result) = ignore r in
  match op with
  | Create (i, cls) -> (
    match DB.create_object env.db ~cls ~name:(Printf.sprintf "obj%d" i) () with
    | Ok id -> env.objects <- id :: env.objects
    | Error _ -> ())
  | CreatePattern i -> (
    match
      DB.create_object env.db ~cls:"Data" ~name:(Printf.sprintf "pat%d" i)
        ~pattern:true ()
    with
    | Ok id -> env.patterns <- id :: env.patterns
    | Error _ -> ())
  | CreateSub (p, role) -> (
    match pick (env.objects @ env.patterns) p with
    | None -> ()
    | Some parent -> (
      let value =
        if role = "Description" || role = "Keywords" then
          Some (Value.String "x")
        else None
      in
      match DB.create_sub_object env.db ~parent ~role ?value () with
      | Ok id -> env.subs <- id :: env.subs
      | Error _ -> ()))
  | CreateRel (a, b, assoc) -> (
    match (pick env.objects a, pick env.objects b) with
    | Some x, Some y ->
      ignore_result (DB.create_relationship env.db ~assoc ~endpoints:[ x; y ] ())
    | _ -> ())
  | SetValue (i, v) -> (
    match pick env.subs i with
    | None -> ()
    | Some id ->
      ignore_result
        (DB.set_value env.db id (Option.map (fun s -> Value.String s) v)))
  | Reclassify (i, cls) -> (
    match pick env.objects i with
    | None -> ()
    | Some id -> ignore_result (DB.reclassify env.db id ~to_:cls))
  | Delete i -> (
    match pick (env.objects @ env.subs) i with
    | None -> ()
    | Some id -> ignore_result (DB.delete env.db id))
  | Inherit (p, i) -> (
    match (pick env.patterns p, pick env.objects i) with
    | Some pattern, Some inheritor ->
      ignore_result (DB.inherit_pattern env.db ~pattern ~inheritor)
    | _ -> ())
  | Snapshot -> (
    match DB.create_version env.db with
    | Ok v ->
      env.versions <- v :: env.versions;
      env.fingerprints <-
        (v, fingerprint_view (View.at (DB.raw env.db) v)) :: env.fingerprints
    | Error _ -> ())
  | Branch i -> (
    match pick env.versions i with
    | None -> ()
    | Some v -> ignore_result (DB.begin_alternative env.db ~from_:v ~force:true ()))

(* ------------------------------------------------------------------ *)
(* Invariants                                                           *)
(* ------------------------------------------------------------------ *)

let consistency_holds env =
  match Seed_core.Consistency.check_database (View.current (DB.raw env.db)) with
  | Ok () -> true
  | Error _ -> false

let name_index_agrees env =
  let st = DB.raw env.db in
  let v = View.current st in
  let scan =
    Seed_core.Db_state.fold_items st ~init:[] ~f:(fun acc it ->
        match (it.Item.body, View.obj_state v it) with
        | Item.Independent, Some { Item.name = Some n; deleted = false; _ } ->
          (n, it.Item.id) :: acc
        | _ -> acc)
  in
  List.for_all
    (fun (n, id) ->
      match Seed_core.Db_state.find_id_by_name st n with
      | Some found -> Ident.equal found id
      | None -> false)
    scan
  (* and no duplicate names *)
  && List.length (List.sort_uniq compare (List.map fst scan)) = List.length scan

let versions_immutable env =
  List.for_all
    (fun (v, fp) ->
      String.equal fp (fingerprint_view (View.at (DB.raw env.db) v)))
    env.fingerprints

let roundtrip_lossless env =
  match Seed_core.Persist.decode_db (Seed_core.Persist.encode_db env.db) with
  | Error _ -> false
  | Ok db2 ->
    String.equal
      (fingerprint_view (View.current (DB.raw env.db)))
      (fingerprint_view (View.current (DB.raw db2)))
    && List.for_all
         (fun (v, fp) ->
           String.equal fp (fingerprint_view (View.at (DB.raw db2) v)))
         env.fingerprints

let run_model ops =
  let env =
    {
      db = DB.create (fig3_schema ());
      objects = [];
      subs = [];
      patterns = [];
      versions = [];
      fingerprints = [];
    }
  in
  List.iter (apply env) ops;
  env

let prop_consistency =
  qcheck_case ~count:120 "consistency holds after any op sequence" ops_gen
    (fun ops -> consistency_holds (run_model ops))

let prop_name_index =
  qcheck_case ~count:120 "name index agrees with a table scan" ops_gen
    (fun ops -> name_index_agrees (run_model ops))

let prop_versions_immutable =
  qcheck_case ~count:120 "saved versions never change" ops_gen (fun ops ->
      versions_immutable (run_model ops))

let prop_roundtrip =
  qcheck_case ~count:60 "persistence roundtrip is lossless" ops_gen (fun ops ->
      roundtrip_lossless (run_model ops))

let prop_all_after_each_op =
  (* the strictest variant: invariants hold at every prefix, not just at
     the end *)
  qcheck_case ~count:40 "invariants hold after every prefix"
    QCheck2.Gen.(list_size (int_range 0 30) op_gen)
    (fun ops ->
      let env =
        {
          db = DB.create (fig3_schema ());
          objects = [];
          subs = [];
          patterns = [];
          versions = [];
          fingerprints = [];
        }
      in
      List.for_all
        (fun op ->
          apply env op;
          consistency_holds env && name_index_agrees env
          && versions_immutable env)
        ops)

let () =
  Alcotest.run "model"
    [
      ( "random operations",
        [
          prop_consistency;
          prop_name_index;
          prop_versions_immutable;
          prop_roundtrip;
          prop_all_after_each_op;
        ] );
    ]
