open Seed_schema
open Helpers

(* ------------------------------------------------------------------ *)
(* Cardinality                                                          *)
(* ------------------------------------------------------------------ *)

let test_card_constructors () =
  Alcotest.(check string) "any" "0..*" (Cardinality.to_string Cardinality.any);
  Alcotest.(check string) "one" "1..1" (Cardinality.to_string Cardinality.one);
  Alcotest.(check string) "opt" "0..1" (Cardinality.to_string Cardinality.opt);
  Alcotest.(check string) "between" "2..5"
    (Cardinality.to_string (Cardinality.between 2 5));
  Alcotest.(check string) "at_least" "3..*"
    (Cardinality.to_string (Cardinality.at_least 3))

let test_card_bounds () =
  let c = Cardinality.between 1 16 in
  Alcotest.(check bool) "within" true (Cardinality.within_max c 16);
  Alcotest.(check bool) "over" false (Cardinality.within_max c 17);
  Alcotest.(check bool) "min met" true (Cardinality.meets_min c 1);
  Alcotest.(check bool) "min unmet" false (Cardinality.meets_min c 0);
  Alcotest.(check bool) "unbounded" true
    (Cardinality.within_max Cardinality.any max_int)

let test_card_parse () =
  Alcotest.(check bool) "0..16" true
    (Cardinality.equal (ok (Cardinality.of_string "0..16")) (Cardinality.between 0 16));
  Alcotest.(check bool) "1..*" true
    (Cardinality.equal (ok (Cardinality.of_string "1..*")) (Cardinality.at_least 1));
  List.iter
    (fun s -> check_err s (fun _ -> true) (Cardinality.of_string s))
    [ ""; "x"; "1"; "1.."; "..2"; "2..1"; "-1..2"; "1..x" ]

let test_card_invalid () =
  Alcotest.check_raises "neg min" (Invalid_argument "Cardinality.make: negative minimum")
    (fun () -> ignore (Cardinality.make (-1) None));
  Alcotest.check_raises "max<min" (Invalid_argument "Cardinality.make: max < min")
    (fun () -> ignore (Cardinality.make 3 (Some 2)))

(* ------------------------------------------------------------------ *)
(* Values and value types                                               *)
(* ------------------------------------------------------------------ *)

let test_value_type_roundtrip () =
  List.iter
    (fun t ->
      let s = Value_type.to_string t in
      Alcotest.(check bool) s true (Value_type.equal t (ok (Value_type.of_string s))))
    [
      Value_type.String;
      Value_type.Int;
      Value_type.Float;
      Value_type.Bool;
      Value_type.Date;
      Value_type.Enum [ "abort"; "repeat" ];
    ]

let test_value_type_bad () =
  List.iter
    (fun s -> check_err s (fun _ -> true) (Value_type.of_string s))
    [ "string"; ""; "ENUM()"; "ENUM(a,,b)"; "ENUM(a" ]

let test_value_check () =
  check_ok "string" (Value.check Value_type.String (Value.String "x"));
  check_ok "int" (Value.check Value_type.Int (Value.Int 3));
  check_ok "enum member" (Value.check (Value_type.Enum [ "a"; "b" ]) (Value.Enum "a"));
  check_err "enum non-member" is_type
    (Value.check (Value_type.Enum [ "a" ]) (Value.Enum "z"));
  check_err "wrong type" is_type (Value.check Value_type.Int (Value.String "x"));
  check_ok "date" (Value.check Value_type.Date (Value.date 1986 2 5))

let test_value_date_validation () =
  Alcotest.check_raises "month 13"
    (Invalid_argument "Value.date: not a calendar date: 1986-13-1") (fun () ->
      ignore (Value.date 1986 13 1));
  check_ok "feb 29 leap" (Value.check Value_type.Date (Value.date 2024 2 29));
  Alcotest.check_raises "feb 29 non-leap"
    (Invalid_argument "Value.date: not a calendar date: 2023-2-29") (fun () ->
      ignore (Value.date 2023 2 29));
  Alcotest.check_raises "feb 29 century"
    (Invalid_argument "Value.date: not a calendar date: 1900-2-29") (fun () ->
      ignore (Value.date 1900 2 29));
  check_ok "feb 29 400-year" (Value.check Value_type.Date (Value.date 2000 2 29))

let test_value_compare () =
  Alcotest.(check bool) "int lt" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "eq" true (Value.equal (Value.String "a") (Value.String "a"));
  Alcotest.(check bool) "neq types" false (Value.equal (Value.Int 1) (Value.Bool true))

(* ------------------------------------------------------------------ *)
(* Schema construction and validation                                   *)
(* ------------------------------------------------------------------ *)

let is_schema_violation = function Seed_util.Seed_error.Schema_violation _ -> true | _ -> false

let test_fig2_builds () =
  let s = fig2_schema () in
  Alcotest.(check int) "classes" 7 (List.length (Schema.classes s));
  Alcotest.(check int) "assocs" 3 (List.length (Schema.assocs s));
  Alcotest.(check int) "top-level" 2 (List.length (Schema.top_level_classes s))

let test_fig3_builds () =
  let s = fig3_schema () in
  Alcotest.(check bool) "Thing exists" true (Schema.find_class s "Thing" <> None);
  Alcotest.(check bool) "Access exists" true (Schema.find_assoc s "Access" <> None)

let test_duplicate_class () =
  let r = Schema.of_defs [ Class_def.v [ "A" ]; Class_def.v [ "A" ] ] [] in
  check_err "duplicate"
    (function Seed_util.Seed_error.Duplicate_class _ -> true | _ -> false)
    r

let test_orphan_subclass () =
  let r = Schema.of_defs [ Class_def.v [ "A"; "B" ] ] [] in
  check_err "orphan"
    (function Seed_util.Seed_error.Unknown_class _ -> true | _ -> false)
    r

let test_unknown_super () =
  let r = Schema.of_defs [ Class_def.v ~super:"Nope" [ "A" ] ] [] in
  check_err "super"
    (function
      | Seed_util.Seed_error.Unknown_class _
      | Seed_util.Seed_error.Schema_violation _ ->
        true
      | _ -> false)
    r

let test_super_cycle () =
  let r =
    Schema.of_defs
      [ Class_def.v ~super:"B" [ "A" ]; Class_def.v ~super:"A" [ "B" ] ]
      []
  in
  check_err "cycle" is_schema_violation r

let test_subclass_cannot_be_generalized () =
  let r =
    Schema.of_defs
      [ Class_def.v [ "A" ]; Class_def.v ~super:"A" [ "A"; "B" ] ]
      []
  in
  check_err "sub-class super" is_schema_violation r

let test_inherited_child_clash () =
  let r =
    Schema.of_defs
      [
        Class_def.v [ "Thing" ];
        Class_def.v ~card:Cardinality.opt [ "Thing"; "Note" ];
        Class_def.v ~super:"Thing" [ "Data" ];
        Class_def.v ~card:Cardinality.opt [ "Data"; "Note" ];
      ]
      []
  in
  check_err "clash" is_schema_violation r

let test_covering_needs_specialization () =
  let r = Schema.of_defs [ Class_def.v ~covering:true [ "A" ] ] [] in
  check_err "covering" is_schema_violation r

let test_assoc_role_targets_must_be_top_level () =
  let r =
    Schema.of_defs
      [ Class_def.v [ "A" ]; Class_def.v ~card:Cardinality.opt [ "A"; "B" ] ]
      [ Assoc_def.v "R" [ Assoc_def.role "x" "A.B"; Assoc_def.role "y" "A" ] ]
  in
  check_err "sub-class target" is_schema_violation r

let test_assoc_super_arity () =
  let r =
    Schema.of_defs
      [ Class_def.v [ "A" ] ]
      [
        Assoc_def.v "S" [ Assoc_def.role "a" "A"; Assoc_def.role "b" "A" ];
        Assoc_def.v ~super:"S" "T"
          [ Assoc_def.role "a" "A"; Assoc_def.role "b" "A"; Assoc_def.role "c" "A" ];
      ]
  in
  check_err "arity" is_schema_violation r

let test_assoc_super_role_compat () =
  let r =
    Schema.of_defs
      [ Class_def.v [ "A" ]; Class_def.v [ "B" ] ]
      [
        Assoc_def.v "S" [ Assoc_def.role "a" "A"; Assoc_def.role "b" "A" ];
        Assoc_def.v ~super:"S" "T"
          [ Assoc_def.role "a" "B"; Assoc_def.role "b" "A" ];
      ]
  in
  check_err "role target" is_schema_violation r

let test_acyclic_requires_binary () =
  let r =
    Schema.of_defs
      [ Class_def.v [ "A" ] ]
      [
        Assoc_def.v ~acyclic:true "T"
          [ Assoc_def.role "a" "A"; Assoc_def.role "b" "A"; Assoc_def.role "c" "A" ];
      ]
  in
  check_err "ternary acyclic" is_schema_violation r

let test_acyclic_requires_one_hierarchy () =
  let r =
    Schema.of_defs
      [ Class_def.v [ "A" ]; Class_def.v [ "B" ] ]
      [
        Assoc_def.v ~acyclic:true "T"
          [ Assoc_def.role "a" "A"; Assoc_def.role "b" "B" ];
      ]
  in
  check_err "two hierarchies" is_schema_violation r

let test_bad_names () =
  check_err "dotted component" is_schema_violation
    (Schema.of_defs [ Class_def.v [ "A.B" ] ] []);
  check_err "bracket" is_schema_violation
    (Schema.of_defs [ Class_def.v [ "A[" ] ] [])

let test_assoc_def_invariants () =
  Alcotest.check_raises "one role"
    (Invalid_argument "Assoc_def.v: association R needs at least 2 roles")
    (fun () -> ignore (Assoc_def.v "R" [ Assoc_def.role "a" "A" ]));
  Alcotest.check_raises "dup roles"
    (Invalid_argument "Assoc_def.v: duplicate role names in R") (fun () ->
      ignore (Assoc_def.v "R" [ Assoc_def.role "a" "A"; Assoc_def.role "a" "A" ]))

(* ------------------------------------------------------------------ *)
(* Generalization queries                                               *)
(* ------------------------------------------------------------------ *)

let test_class_supers () =
  let s = fig3_schema () in
  Alcotest.(check (list string)) "OutputData supers" [ "Data"; "Thing" ]
    (Schema.class_supers s "OutputData");
  Alcotest.(check (list string)) "Thing supers" [] (Schema.class_supers s "Thing")

let test_class_is_a () =
  let s = fig3_schema () in
  Alcotest.(check bool) "refl" true (Schema.class_is_a s ~sub:"Data" ~super:"Data");
  Alcotest.(check bool) "up" true (Schema.class_is_a s ~sub:"OutputData" ~super:"Thing");
  Alcotest.(check bool) "down" false (Schema.class_is_a s ~sub:"Thing" ~super:"Data");
  Alcotest.(check bool) "sibling" false
    (Schema.class_is_a s ~sub:"Action" ~super:"Data")

let test_class_descendants () =
  let s = fig3_schema () in
  let d = List.sort String.compare (Schema.class_descendants s "Data") in
  Alcotest.(check (list string)) "data desc" [ "InputData"; "OutputData" ] d;
  let t = List.sort String.compare (Schema.class_descendants s "Thing") in
  Alcotest.(check (list string)) "thing desc"
    [ "Action"; "Data"; "InputData"; "OutputData" ]
    t

let test_hierarchy_root () =
  let s = fig3_schema () in
  Alcotest.(check string) "root" "Thing" (Schema.class_hierarchy_root s "OutputData");
  Alcotest.(check bool) "same hierarchy" true
    (Schema.same_class_hierarchy s "InputData" "Action")

let test_assoc_generalization () =
  let s = fig3_schema () in
  Alcotest.(check (list string)) "Read supers" [ "Access" ] (Schema.assoc_supers s "Read");
  Alcotest.(check bool) "Write isa Access" true
    (Schema.assoc_is_a s ~sub:"Write" ~super:"Access");
  let d = List.sort String.compare (Schema.assoc_descendants s "Access") in
  Alcotest.(check (list string)) "Access desc" [ "Read"; "Write" ] d;
  Alcotest.(check bool) "Contained separate" false
    (Schema.same_assoc_hierarchy s "Contained" "Read")

let test_resolve_child () =
  let s = fig3_schema () in
  let d = ok (Schema.resolve_child s ~cls:"Data" ~role:"Text") in
  Alcotest.(check string) "own" "Data.Text" (Class_def.name d);
  let d = ok (Schema.resolve_child s ~cls:"Data" ~role:"Description") in
  Alcotest.(check string) "inherited" "Thing.Description" (Class_def.name d);
  let d = ok (Schema.resolve_child s ~cls:"OutputData" ~role:"Revised") in
  Alcotest.(check string) "deep inherited" "Thing.Revised" (Class_def.name d);
  let d = ok (Schema.resolve_child s ~cls:"Data.Text" ~role:"Body") in
  Alcotest.(check string) "nested" "Data.Text.Body" (Class_def.name d);
  check_err "missing"
    (function Seed_util.Seed_error.Unknown_class _ -> true | _ -> false)
    (Schema.resolve_child s ~cls:"Action" ~role:"Text")

let test_effective_children () =
  let s = fig3_schema () in
  let roles = List.map fst (Schema.effective_children s "OutputData") in
  Alcotest.(check bool) "has Text" true (List.mem "Text" roles);
  Alcotest.(check bool) "has Description" true (List.mem "Description" roles);
  Alcotest.(check bool) "has Revised" true (List.mem "Revised" roles);
  Alcotest.(check bool) "no ErrorHandling" false (List.mem "ErrorHandling" roles)

let test_participation_constraints () =
  let s = fig3_schema () in
  let names_of cls =
    List.map
      (fun ((a : Assoc_def.t), i, _) -> (a.Assoc_def.name, i))
      (Schema.participation_constraints s ~cls)
  in
  let for_input = names_of "InputData" in
  Alcotest.(check bool) "Read.from applies" true (List.mem ("Read", 0) for_input);
  Alcotest.(check bool) "Access.from applies" true (List.mem ("Access", 0) for_input);
  Alcotest.(check bool) "Write.to not applicable" false (List.mem ("Write", 0) for_input);
  let for_action = names_of "Action" in
  Alcotest.(check bool) "Access.by applies" true (List.mem ("Access", 1) for_action);
  Alcotest.(check bool) "Contained both ends" true
    (List.mem ("Contained", 0) for_action && List.mem ("Contained", 1) for_action)

(* ------------------------------------------------------------------ *)
(* Schema diff                                                          *)
(* ------------------------------------------------------------------ *)

let mini_schema ?(text_max = 16) ?(with_keywords = false) () =
  let classes =
    [
      Class_def.v [ "Data" ];
      Class_def.v ~card:(Cardinality.between 0 text_max) [ "Data"; "Text" ];
    ]
    @
    if with_keywords then
      [
        Class_def.v ~card:Cardinality.any ~content:Value_type.String
          [ "Data"; "Keywords" ];
      ]
    else []
  in
  Schema.of_defs_exn classes []

let test_diff_add_compatible () =
  let old_ = mini_schema () and new_ = mini_schema ~with_keywords:true () in
  let changes = Schema_diff.diff old_ new_ in
  Alcotest.(check int) "one change" 1 (List.length changes);
  Alcotest.(check bool) "compatible" true (Schema_diff.compatible old_ new_)

let test_diff_remove_incompatible () =
  let old_ = mini_schema ~with_keywords:true () and new_ = mini_schema () in
  Alcotest.(check bool) "incompatible" false (Schema_diff.compatible old_ new_)

let test_diff_max_relax_compatible () =
  let old_ = mini_schema ~text_max:16 () and new_ = mini_schema ~text_max:32 () in
  Alcotest.(check bool) "relax" true (Schema_diff.compatible old_ new_);
  Alcotest.(check bool) "tighten" false (Schema_diff.compatible new_ old_)

let test_diff_min_changes_are_compatible () =
  let mk min =
    Schema.of_defs_exn
      [
        Class_def.v [ "Data" ];
        Class_def.v ~card:(Cardinality.make min (Some 5)) [ "Data"; "Text" ];
      ]
      []
  in
  Alcotest.(check bool) "raise min" true (Schema_diff.compatible (mk 0) (mk 2));
  Alcotest.(check bool) "lower min" true (Schema_diff.compatible (mk 2) (mk 0))

let test_diff_empty () =
  let s = fig3_schema () in
  Alcotest.(check int) "no changes" 0 (List.length (Schema_diff.diff s s))

let test_diff_assoc_changes () =
  let mk acyclic =
    Schema.of_defs_exn
      [ Class_def.v [ "A" ] ]
      [
        Assoc_def.v ~acyclic "T"
          [ Assoc_def.role ~card:Cardinality.opt "x" "A"; Assoc_def.role "y" "A" ];
      ]
  in
  Alcotest.(check bool) "impose" false (Schema_diff.compatible (mk false) (mk true));
  Alcotest.(check bool) "drop" true (Schema_diff.compatible (mk true) (mk false))

let test_diff_printing () =
  let old_ = mini_schema ()
  and new_ = mini_schema ~with_keywords:true ~text_max:32 () in
  List.iter
    (fun c ->
      Alcotest.(check bool) "printable" true
        (String.length (Fmt.str "%a" Schema_diff.pp_change c) > 0))
    (Schema_diff.diff old_ new_)

let () =
  Alcotest.run "schema"
    [
      ( "cardinality",
        [
          tc "constructors" test_card_constructors;
          tc "bounds" test_card_bounds;
          tc "parse" test_card_parse;
          tc "invalid" test_card_invalid;
        ] );
      ( "values",
        [
          tc "type roundtrip" test_value_type_roundtrip;
          tc "bad types" test_value_type_bad;
          tc "check" test_value_check;
          tc "dates" test_value_date_validation;
          tc "compare" test_value_compare;
        ] );
      ( "validation",
        [
          tc "fig2 builds" test_fig2_builds;
          tc "fig3 builds" test_fig3_builds;
          tc "duplicate class" test_duplicate_class;
          tc "orphan sub-class" test_orphan_subclass;
          tc "unknown super" test_unknown_super;
          tc "generalization cycle" test_super_cycle;
          tc "sub-class generalization" test_subclass_cannot_be_generalized;
          tc "inherited child clash" test_inherited_child_clash;
          tc "covering needs specialization" test_covering_needs_specialization;
          tc "role target top-level" test_assoc_role_targets_must_be_top_level;
          tc "assoc super arity" test_assoc_super_arity;
          tc "assoc role compatibility" test_assoc_super_role_compat;
          tc "acyclic binary" test_acyclic_requires_binary;
          tc "acyclic one hierarchy" test_acyclic_requires_one_hierarchy;
          tc "bad names" test_bad_names;
          tc "assoc def invariants" test_assoc_def_invariants;
        ] );
      ( "generalization",
        [
          tc "class supers" test_class_supers;
          tc "class is_a" test_class_is_a;
          tc "descendants" test_class_descendants;
          tc "hierarchy root" test_hierarchy_root;
          tc "associations" test_assoc_generalization;
          tc "resolve child" test_resolve_child;
          tc "effective children" test_effective_children;
          tc "participation constraints" test_participation_constraints;
        ] );
      ( "diff",
        [
          tc "addition compatible" test_diff_add_compatible;
          tc "removal incompatible" test_diff_remove_incompatible;
          tc "max relaxation" test_diff_max_relax_compatible;
          tc "min changes compatible" test_diff_min_changes_are_compatible;
          tc "identity" test_diff_empty;
          tc "assoc changes" test_diff_assoc_changes;
          tc "printing" test_diff_printing;
        ] );
    ]
