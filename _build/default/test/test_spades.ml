(* The SPADES tool layer: the paper's evolutionary specification
   workflow end to end. *)

open Seed_util
open Seed_schema
open Helpers
module S = Spades_tool.Spades
module SR = Spades_tool.Spades_raw
module DB = Seed_core.Database

let test_vague_entry () =
  let t = S.create () in
  let _ = ok (S.note_thing t "Alarms" ~description:"Alarms are things" ()) in
  let _ = ok (S.note_thing t "AlarmHandler" ()) in
  let m = S.maturity t in
  Alcotest.(check int) "two vague things" 2 m.S.things;
  Alcotest.(check bool) "incomplete" false (S.is_implementable t);
  (* the description landed *)
  let db = S.db t in
  Alcotest.(check bool) "description" true (DB.resolve db "Alarms.Description" <> None)

let test_duplicate_thing () =
  let t = S.create () in
  let _ = ok (S.note_thing t "X" ()) in
  check_err "dup" is_duplicate (S.note_thing t "X" ())

let test_progressive_refinement () =
  let t = S.create () in
  let _ = ok (S.note_thing t "Alarms" ()) in
  let _ = ok (S.note_thing t "Sensor" ()) in
  check_ok "classify action" (S.classify_action t "Sensor");
  let flow = ok (S.add_flow t ~data:"Alarms" ~action:"Sensor" S.Vague) in
  let m = S.maturity t in
  Alcotest.(check int) "no bare things left" 0 m.S.things;
  Alcotest.(check int) "one vague flow" 1 m.S.vague_flows;
  (* sharpen to a write *)
  check_ok "refine" (S.refine_flow t flow S.Writing);
  let m = S.maturity t in
  Alcotest.(check int) "precise now" 1 m.S.precise_flows;
  Alcotest.(check int) "vague gone" 0 m.S.vague_flows;
  let db = S.db t in
  let alarms = Option.get (DB.find_object db "Alarms") in
  Alcotest.(check (option string)) "auto-specialized" (Some "OutputData")
    (DB.class_of db alarms)

let test_direct_precise_flow () =
  let t = S.create () in
  let _ = ok (S.note_thing t "Cfg" ()) in
  let _ = ok (S.note_thing t "Loader" ()) in
  let _ = ok (S.add_flow t ~data:"Cfg" ~action:"Loader" S.Reading) in
  let db = S.db t in
  Alcotest.(check (option string)) "input data" (Some "InputData")
    (DB.class_of db (Option.get (DB.find_object db "Cfg")))

let test_conflicting_refinement_fails () =
  let t = S.create () in
  let _ = ok (S.note_thing t "D" ()) in
  let _ = ok (S.note_thing t "A" ()) in
  let _ = ok (S.add_flow t ~data:"D" ~action:"A" S.Writing) in
  (* D is now OutputData written by A; reading it would need InputData *)
  check_err "cannot be input too"
    (function
      | Seed_error.Membership_violation _ | Seed_error.Not_in_generalization _ -> true
      | _ -> false)
    (S.add_flow t ~data:"D" ~action:"A" S.Reading)

let test_texts_and_keywords () =
  let t = S.create () in
  let _ = ok (S.note_thing t "Alarms" ()) in
  let _ =
    ok
      (S.add_text t ~data:"Alarms"
         ~body:"Alarms are represented in an alarm display matrix"
         ~selector:"Representation" ())
  in
  check_ok "kw1" (S.add_keyword t "Alarms" "Alarmhandling");
  check_ok "kw2" (S.add_keyword t "Alarms" "Display");
  let db = S.db t in
  Alcotest.(check bool) "selector" true
    (DB.resolve db "Alarms.Text[0].Selector" <> None);
  Alcotest.(check bool) "kw value" true
    (match DB.resolve db "Alarms.Keywords[1]" with
    | Some id -> DB.get_value db id = Some (Value.String "Display")
    | None -> false)

let test_describe_overwrites () =
  let t = S.create () in
  let _ = ok (S.note_thing t "X" ~description:"first" ()) in
  check_ok "redescribe" (S.describe t "X" "second");
  let db = S.db t in
  Alcotest.(check bool) "replaced" true
    (DB.get_value db (Option.get (DB.resolve db "X.Description"))
    = Some (Value.String "second"))

let test_containment_tree () =
  let t = S.create () in
  List.iter (fun n -> ignore (ok (S.note_thing t n ()))) [ "Main"; "Init"; "Loop" ];
  let _ = ok (S.contain t ~container:"Main" ~action:"Init") in
  let _ = ok (S.contain t ~container:"Main" ~action:"Loop") in
  check_err "no cycles" is_cycle (S.contain t ~container:"Init" ~action:"Main");
  check_err "one container" is_cardinality
    (S.contain t ~container:"Loop" ~action:"Init")

let test_set_revised () =
  let t = S.create () in
  let _ = ok (S.note_thing t "X" ()) in
  check_ok "revised" (S.set_revised t "X" { Value.year = 1986; month = 2; day = 5 });
  let db = S.db t in
  Alcotest.(check bool) "stored" true (DB.resolve db "X.Revised" <> None)

let test_maturity_progression_to_implementable () =
  let t = S.create () in
  let _ = ok (S.note_thing t "Alarms" ()) in
  let _ = ok (S.note_thing t "Handler" ()) in
  Alcotest.(check bool) "not implementable" false (S.is_implementable t);
  let flow = ok (S.add_flow t ~data:"Alarms" ~action:"Handler" S.Vague) in
  Alcotest.(check bool) "still vague flow" false (S.is_implementable t);
  check_ok "refine" (S.refine_flow t flow S.Reading);
  (* Alarms:InputData read by Handler — Access minimum met, nothing vague *)
  Alcotest.(check bool) "implementable" true (S.is_implementable t);
  Alcotest.(check int) "no diagnostics" 0 (List.length (S.maturity t).S.diagnostics)

let test_milestones_are_versions () =
  let t = S.create () in
  let _ = ok (S.note_thing t "Alarms" ()) in
  let v1 = ok (S.save_milestone t) in
  check_ok "classify" (S.classify_data t "Alarms");
  let v2 = ok (S.save_milestone t) in
  Alcotest.(check string) "v1" "1.0" (Version_id.to_string v1);
  Alcotest.(check string) "v2" "2.0" (Version_id.to_string v2);
  let db = S.db t in
  ok (DB.select_version db (Some v1));
  Alcotest.(check (option string)) "history preserved" (Some "Thing")
    (DB.class_of db (Option.get (DB.find_object db "Alarms")));
  ok (DB.select_version db None)

let test_spades_raw_equivalent_workload () =
  (* the raw backend accepts the same workload (without any guarantees) *)
  let t = SR.create () in
  SR.note_thing t "Alarms" ~description:"d" ();
  SR.note_thing t "Sensor" ();
  SR.classify_action t "Sensor";
  SR.add_flow t ~data:"Alarms" ~action:"Sensor" S.Vague;
  SR.refine_flow t ~data:"Alarms" ~action:"Sensor" S.Writing;
  SR.contain t ~container:"Sensor" ~action:"Sensor";
  (* ^ raw happily stores a containment cycle: no checking *)
  Alcotest.(check int) "objects" 2 (SR.object_count t);
  Alcotest.(check bool) "flows" true (SR.flow_count t >= 2)

let () =
  Alcotest.run "spades"
    [
      ( "entry",
        [
          tc "vague entry" test_vague_entry;
          tc "duplicates" test_duplicate_thing;
          tc "texts and keywords" test_texts_and_keywords;
          tc "describe" test_describe_overwrites;
          tc "revised dates" test_set_revised;
        ] );
      ( "refinement",
        [
          tc "progressive" test_progressive_refinement;
          tc "direct precise" test_direct_precise_flow;
          tc "conflicts surface" test_conflicting_refinement_fails;
          tc "containment" test_containment_tree;
        ] );
      ( "maturity",
        [
          tc "to implementable" test_maturity_progression_to_implementable;
          tc "milestones" test_milestones_are_versions;
        ] );
      ( "raw backend", [ tc "same workload, no guarantees" test_spades_raw_equivalent_workload ] );
    ]
