(* The textual schema language: parsing, printing, roundtrips. *)

open Seed_schema
open Helpers

let fig3_text =
  {|
// the Fig. 3 schema
class Thing covering {
  Description : STRING [0..1]
  Revised     : DATE   [0..1]
  Keywords    : STRING [0..8]
}
class Data isa Thing {
  Text [0..16] {
    Body     : STRING [1..1]
    Selector : STRING [0..1]
  }
}
class InputData isa Data
class OutputData isa Data
class Action isa Thing {
  ErrorHandling : ENUM(abort,repeat) [0..1]
}

assoc Access covering (from : Data, by : Action [1..*])
assoc Read isa Access (from : InputData, by : Action)
assoc Write isa Access (to : OutputData, by : Action) {
  NumberOfWrites : INT required
  OnError : ENUM(abort,repeat)
}
assoc Contained acyclic (contained : Action [0..1], container : Action)
|}

let test_parse_fig3 () =
  let s = ok (Schema_text.parse fig3_text) in
  Alcotest.(check int) "classes" 12 (List.length (Schema.classes s));
  Alcotest.(check int) "assocs" 4 (List.length (Schema.assocs s));
  let text = Option.get (Schema.find_class s "Data.Text") in
  Alcotest.(check bool) "text card" true
    (Cardinality.equal text.Class_def.card (Cardinality.between 0 16));
  let body = Option.get (Schema.find_class s "Data.Text.Body") in
  Alcotest.(check bool) "body content" true
    (body.Class_def.content = Some Value_type.String);
  let thing = Option.get (Schema.find_class s "Thing") in
  Alcotest.(check bool) "covering" true thing.Class_def.covering;
  let contained = Option.get (Schema.find_assoc s "Contained") in
  Alcotest.(check bool) "acyclic" true contained.Assoc_def.acyclic;
  let write = Option.get (Schema.find_assoc s "Write") in
  Alcotest.(check int) "write attrs" 2 (List.length write.Assoc_def.attrs);
  Alcotest.(check bool) "required" true
    (match Assoc_def.find_attr write "NumberOfWrites" with
    | Some a -> a.Assoc_def.required
    | None -> false)

let test_parsed_schema_equals_builtin () =
  (* the textual Fig. 3 schema behaves like the programmatic one *)
  let s = ok (Schema_text.parse fig3_text) in
  let builtin = fig3_schema () in
  Alcotest.(check (list string)) "same class names"
    (List.map Class_def.name (Schema.classes builtin))
    (List.map Class_def.name (Schema.classes s));
  Alcotest.(check (list string)) "same assoc names"
    (List.map (fun (a : Assoc_def.t) -> a.Assoc_def.name) (Schema.assocs builtin))
    (List.map (fun (a : Assoc_def.t) -> a.Assoc_def.name) (Schema.assocs s))

let structurally_equal a b =
  Schema.classes a = Schema.classes b && Schema.assocs a = Schema.assocs b

let test_roundtrip_fig3 () =
  let s = ok (Schema_text.parse fig3_text) in
  let printed = Schema_text.print s in
  let s2 = ok (Schema_text.parse printed) in
  Alcotest.(check bool) "roundtrip" true (structurally_equal s s2)

let test_roundtrip_builtin_schemas () =
  List.iter
    (fun s ->
      let s2 = ok (Schema_text.parse (Schema_text.print s)) in
      Alcotest.(check bool) "roundtrip" true (structurally_equal s s2))
    [ fig3_schema (); fig2_schema () ]

let test_procedures_roundtrip () =
  let src =
    {|
class Doc procedures (audit, log) {
  Pages : INT [0..1] procedures (pagecheck)
}
class Other
assoc Refers procedures (refcheck) (from : Doc, to : Other)
|}
  in
  let s = ok (Schema_text.parse src) in
  let doc = Option.get (Schema.find_class s "Doc") in
  Alcotest.(check (list string)) "class procs" [ "audit"; "log" ]
    doc.Class_def.procedures;
  let pages = Option.get (Schema.find_class s "Doc.Pages") in
  Alcotest.(check (list string)) "member procs" [ "pagecheck" ]
    pages.Class_def.procedures;
  let refers = Option.get (Schema.find_assoc s "Refers") in
  Alcotest.(check (list string)) "assoc procs" [ "refcheck" ]
    refers.Assoc_def.procedures;
  let s2 = ok (Schema_text.parse (Schema_text.print s)) in
  Alcotest.(check bool) "roundtrip" true (structurally_equal s s2)

(* random well-formed schemas roundtrip through print/parse *)
let schema_gen =
  let open QCheck2.Gen in
  let card =
    oneof
      [
        return Cardinality.any;
        return Cardinality.opt;
        return Cardinality.one;
        map2
          (fun lo extra -> Cardinality.between lo (lo + extra))
          (int_bound 2) (int_bound 8);
        map (fun lo -> Cardinality.at_least lo) (int_bound 3);
      ]
  in
  let content =
    opt
      (oneofl
         [
           Value_type.String;
           Value_type.Int;
           Value_type.Float;
           Value_type.Bool;
           Value_type.Date;
           Value_type.Enum [ "a"; "b"; "c" ];
         ])
  in
  let* n_classes = int_range 1 4 in
  let class_names = List.init n_classes (fun i -> Printf.sprintf "C%d" i) in
  (* random generalization forest: class i may have a super among 0..i-1 *)
  let* supers =
    flatten_l
      (List.mapi
         (fun i _ -> if i = 0 then return None else opt (int_bound (i - 1)))
         class_names)
  in
  let has_spec i = List.exists (fun s -> s = Some i) supers in
  let* coverings =
    flatten_l
      (List.mapi
         (fun i _ -> if has_spec i then bool else return false)
         class_names)
  in
  (* members: distinct role names per class, one optional nesting level *)
  let member cls j =
    let* c = card in
    let* ty = content in
    let* nested = bool in
    let path = [ cls; Printf.sprintf "M%d" j ] in
    let def = Class_def.v ~card:c ?content:ty path in
    if nested then
      let* c2 = card in
      let* ty2 = content in
      return [ def; Class_def.v ~card:c2 ?content:ty2 (path @ [ "N0" ]) ]
    else return [ def ]
  in
  let* member_lists =
    flatten_l
      (List.map
         (fun cls ->
           let* k = int_bound 2 in
           let* ms = flatten_l (List.init k (member cls)) in
           return (List.concat ms))
         class_names)
  in
  let classes =
    List.concat
      (List.mapi
         (fun i cls ->
           let super = Option.map (fun s -> List.nth class_names s) (List.nth supers i) in
           Class_def.v ?super ~covering:(List.nth coverings i) [ cls ]
           :: List.nth member_lists i)
         class_names)
  in
  (* associations over the top-level classes *)
  let* n_assocs = int_bound 2 in
  let* assocs =
    flatten_l
      (List.init n_assocs (fun i ->
           let* t1 = oneofl class_names in
           let* t2 = oneofl class_names in
           let* c1 = card in
           let* c2 = card in
           let* acyclic = bool in
           let* with_attr = bool in
           (* ACYCLIC needs both roles in one hierarchy: use t1 twice *)
           let t2 = if acyclic then t1 else t2 in
           let attrs =
             if with_attr then
               [ Assoc_def.attr ~required:true "W" Value_type.Int ]
             else []
           in
           return
             (Assoc_def.v ~attrs ~acyclic
                (Printf.sprintf "A%d" i)
                [
                  Assoc_def.role ~card:c1 "x" t1;
                  Assoc_def.role ~card:c2 "y" t2;
                ])))
  in
  return (classes, assocs)

let prop_random_schema_roundtrip =
  qcheck_case ~count:200 "random schemas roundtrip" schema_gen
    (fun (classes, assocs) ->
      match Schema.of_defs classes assocs with
      | Error _ -> true (* generator may produce invalid combinations *)
      | Ok s -> (
        match Schema_text.parse (Schema_text.print s) with
        | Error _ -> false
        | Ok s2 -> structurally_equal s s2))

let expect_syntax_error src =
  check_err src
    (function
      | Seed_util.Seed_error.Schema_violation _
      | Seed_util.Seed_error.Invalid_cardinality _
      | Seed_util.Seed_error.Unknown_class _ ->
        true
      | _ -> false)
    (Schema_text.parse src)

let test_syntax_errors () =
  List.iter expect_syntax_error
    [
      "classs Thing";
      "class";
      "class Thing {";
      "class Thing { Description : NOPE }";
      "class Thing { Description : STRING [2..1] }";
      "class Thing { Description : STRING [1..] }";
      "assoc A (x : T)";
      "assoc A (x : T, y : T" (* unclosed *);
      "class A isa";
      "class A @";
      "assoc A (x : Missing, y : Missing)" (* unknown classes *);
    ]

let test_semantic_validation_applies () =
  (* parse errors are not the only gate: full schema validation runs *)
  expect_syntax_error "class A isa B\nclass B isa A";
  expect_syntax_error "class A covering" (* covering without specialization *)

let test_comments_and_whitespace () =
  let src =
    "// leading comment\nclass   A// trailing\n{\n  // inner\n  B : STRING\n}\n"
  in
  let s = ok (Schema_text.parse src) in
  Alcotest.(check bool) "parsed" true (Schema.find_class s "A.B" <> None)

let test_loaded_schema_drives_database () =
  let s = ok (Schema_text.parse fig3_text) in
  let db = Seed_core.Database.create s in
  let module DB = Seed_core.Database in
  let t = ok (DB.create_object db ~cls:"Thing" ~name:"Alarms" ()) in
  check_ok "reclassify" (DB.reclassify db t ~to_:"Data");
  Alcotest.(check bool) "works" true (DB.find_object db "Alarms" = Some t)

let () =
  Alcotest.run "schema_text"
    [
      ( "parsing",
        [
          tc "fig 3 text" test_parse_fig3;
          tc "equals builtin" test_parsed_schema_equals_builtin;
          tc "comments" test_comments_and_whitespace;
          tc "drives a database" test_loaded_schema_drives_database;
        ] );
      ( "roundtrips",
        [
          tc "fig 3" test_roundtrip_fig3;
          tc "builtin schemas" test_roundtrip_builtin_schemas;
          tc "procedures" test_procedures_roundtrip;
          prop_random_schema_roundtrip;
        ] );
      ( "errors",
        [
          tc "syntax" test_syntax_errors;
          tc "semantic validation" test_semantic_validation_applies;
        ] );
    ]
