(* Shared fixtures for the SEED test suites: the paper's Fig. 2 and
   Fig. 3 schemas and common Alcotest plumbing. *)

open Seed_util
open Seed_schema

let ok = Seed_error.ok_exn

let err_of = function
  | Ok _ -> Alcotest.fail "expected an error, got Ok"
  | Error e -> e

let check_ok what = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: unexpected error: %s" what (Seed_error.to_string e)

let check_err what pred = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error e ->
    if not (pred e) then
      Alcotest.failf "%s: unexpected error kind: %s" what (Seed_error.to_string e)

let is_cardinality = function Seed_error.Cardinality_violation _ -> true | _ -> false
let is_membership = function Seed_error.Membership_violation _ -> true | _ -> false
let is_duplicate = function Seed_error.Duplicate_name _ -> true | _ -> false
let is_cycle = function Seed_error.Cycle_detected _ -> true | _ -> false
let is_type = function Seed_error.Type_mismatch _ -> true | _ -> false
let is_pattern_violation = function Seed_error.Pattern_violation _ -> true | _ -> false
let is_vetoed = function Seed_error.Vetoed _ -> true | _ -> false

(* The Fig. 2 schema: the primitive specification system without
   generalizations. *)
let fig2_schema () =
  let c = Cardinality.between in
  Schema.of_defs_exn
    [
      Class_def.v [ "Data" ];
      Class_def.v ~card:(c 0 16) [ "Data"; "Text" ];
      Class_def.v ~card:(c 1 1) ~content:Value_type.String
        [ "Data"; "Text"; "Body" ];
      Class_def.v ~card:(c 0 1) ~content:Value_type.String
        [ "Data"; "Text"; "Selector" ];
      Class_def.v ~card:Cardinality.any ~content:Value_type.String
        [ "Data"; "Text"; "Body"; "Keywords" ];
      Class_def.v [ "Action" ];
      Class_def.v ~card:(c 0 1) ~content:Value_type.String
        [ "Action"; "Description" ];
    ]
    [
      Assoc_def.v "Read"
        [
          Assoc_def.role ~card:(Cardinality.at_least 1) "from" "Data";
          Assoc_def.role ~card:Cardinality.any "by" "Action";
        ];
      Assoc_def.v "Write"
        [
          Assoc_def.role ~card:(Cardinality.at_least 1) "from" "Data";
          Assoc_def.role ~card:Cardinality.any "by" "Action";
        ];
      Assoc_def.v ~acyclic:true "Contained"
        [
          Assoc_def.role ~card:(c 0 1) "contained" "Action";
          Assoc_def.role ~card:Cardinality.any "container" "Action";
        ];
    ]

(* The Fig. 3 schema with generalizations — shared with the SPADES
   tool. *)
let fig3_schema () = Spades_tool.Spec_model.schema

let fresh_db () = Seed_core.Database.create (fig3_schema ())

let with_objects db specs =
  List.map
    (fun (name, cls) ->
      ok (Seed_core.Database.create_object db ~cls ~name ()))
    specs

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let tc name f = Alcotest.test_case name `Quick f
