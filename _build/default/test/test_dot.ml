(* Graphviz export. *)

open Helpers
module DB = Seed_core.Database
module Dot = Seed_core.Dot

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let setup () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"Sensor" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:d ~role:"Description"
         ~value:(Seed_schema.Value.String "store") ())
  in
  let _ = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ d; a ] ()) in
  db

let test_basic_graph () =
  let db = setup () in
  let dot = Dot.of_view (DB.view db) in
  Alcotest.(check bool) "digraph" true (contains dot "digraph seed {");
  Alcotest.(check bool) "alarm node" true (contains dot "Alarms : Data");
  Alcotest.(check bool) "value line" true (contains dot "Description = \\\"store\\\"");
  Alcotest.(check bool) "edge" true (contains dot "[label=\"Access\"]");
  Alcotest.(check bool) "closed" true (contains dot "}\n")

let test_subs_can_be_omitted () =
  let db = setup () in
  let dot = Dot.of_view ~include_subs:false (DB.view db) in
  Alcotest.(check bool) "no value line" false (contains dot "Description")

let test_patterns_rendered () =
  let db = fresh_db () in
  let common = ok (DB.create_object db ~cls:"Action" ~name:"Common" ()) in
  let po = ok (DB.create_object db ~cls:"Data" ~name:"PO" ~pattern:true ()) in
  let _ =
    ok
      (DB.create_relationship db ~assoc:"Access" ~endpoints:[ po; common ]
         ~pattern:true ())
  in
  let v1 = ok (DB.create_object db ~cls:"Data" ~name:"V1" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:po ~inheritor:v1);
  let dot = Dot.of_view (DB.view db) in
  Alcotest.(check bool) "pattern node dashed" true
    (contains dot "style=dashed, color=gray40];");
  Alcotest.(check bool) "inherits edge" true (contains dot "label=\"inherits\"");
  Alcotest.(check bool) "virtual rel" true (contains dot "taillabel=\"inherited\"");
  let plain = Dot.of_view ~include_patterns:false (DB.view db) in
  Alcotest.(check bool) "patterns omitted" false (contains plain "PO")

let test_escaping () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"Weird\"Name" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:d ~role:"Description"
         ~value:(Seed_schema.Value.String "line\nbreak") ())
  in
  let dot = Dot.of_view (DB.view db) in
  Alcotest.(check bool) "quote escaped" true (contains dot "Weird\\\"Name");
  Alcotest.(check bool) "no raw newline in label" false (contains dot "line\nbreak")

let () =
  Alcotest.run "dot"
    [
      ( "export",
        [
          tc "basic graph" test_basic_graph;
          tc "subs omitted" test_subs_can_be_omitted;
          tc "patterns" test_patterns_rendered;
          tc "escaping" test_escaping;
        ] );
    ]
