test/test_rel_attrs.mli:
