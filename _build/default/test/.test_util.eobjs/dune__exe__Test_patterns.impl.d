test/test_patterns.ml: Alcotest Assoc_def Cardinality Class_def Helpers Ident List Option Schema Seed_core Seed_schema Seed_util Value Value_type
