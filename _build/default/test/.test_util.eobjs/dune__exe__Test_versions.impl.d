test/test_versions.ml: Alcotest Cardinality Class_def Helpers Ident List Result Schema Seed_core Seed_error Seed_schema Seed_util Spades_tool Value Version_id
