test/test_server.mli:
