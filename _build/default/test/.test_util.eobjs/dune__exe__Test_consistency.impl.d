test/test_consistency.ml: Alcotest Assoc_def Cardinality Class_def Helpers List Result Schema Seed_core Seed_error Seed_schema Seed_util Value Value_type
