test/test_query.ml: Alcotest Helpers List Option Seed_core Seed_schema String Value
