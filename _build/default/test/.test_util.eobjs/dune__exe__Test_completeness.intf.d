test/test_completeness.mli:
