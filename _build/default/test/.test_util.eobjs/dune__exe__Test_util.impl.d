test/test_util.ml: Alcotest Helpers Ident List Option Path QCheck2 Seed_error Seed_util String Version_id
