test/test_spades.ml: Alcotest Helpers List Option Seed_core Seed_error Seed_schema Seed_util Spades_tool Value Version_id
