test/test_schema_text.ml: Alcotest Assoc_def Cardinality Class_def Helpers List Option Printf QCheck2 Schema Schema_text Seed_core Seed_schema Seed_util Value_type
