test/test_patterns.mli:
