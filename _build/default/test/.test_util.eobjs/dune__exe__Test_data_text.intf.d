test/test_data_text.mli:
