test/test_rel_attrs.ml: Alcotest Assoc_def Class_def Helpers List Schema Seed_core Seed_error Seed_schema Seed_util Spades_tool Value Value_type
