test/helpers.ml: Alcotest Assoc_def Cardinality Class_def List QCheck2 QCheck_alcotest Schema Seed_core Seed_error Seed_schema Seed_util Spades_tool Value_type
