test/test_schema.ml: Alcotest Assoc_def Cardinality Class_def Fmt Helpers List Schema Schema_diff Seed_schema Seed_util String Value Value_type
