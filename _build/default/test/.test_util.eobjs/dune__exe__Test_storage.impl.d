test/test_storage.ml: Alcotest Btree Bytes Char Codec Crc32 Filename Helpers Int Int64 Journal List Map Printf QCheck2 Seed_storage Seed_util Snapshot_file Store String Sys Unix
