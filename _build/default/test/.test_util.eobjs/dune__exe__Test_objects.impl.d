test/test_objects.ml: Alcotest Helpers List Seed_core Seed_error Seed_schema Seed_util Value
