test/test_completeness.ml: Alcotest Fmt Helpers List Option Result Seed_core Seed_schema String Value
