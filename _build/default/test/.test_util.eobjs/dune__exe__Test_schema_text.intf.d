test/test_schema_text.mli:
