test/test_algebra.ml: Alcotest Helpers List Seed_core Seed_util
