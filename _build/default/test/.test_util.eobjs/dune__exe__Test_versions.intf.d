test/test_versions.mli:
