test/test_objects.mli:
