test/test_dot.ml: Alcotest Helpers Seed_core Seed_schema String
