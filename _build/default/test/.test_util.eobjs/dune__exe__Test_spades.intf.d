test/test_spades.mli:
