test/test_data_text.ml: Alcotest Cardinality Class_def Helpers List Option Printf QCheck2 Schema Seed_core Seed_error Seed_schema Seed_util String Value Value_type
