test/test_model.ml: Alcotest Buffer Helpers Ident List Option Printf QCheck2 Seed_core Seed_error Seed_schema Seed_util String Value Version_id
