test/test_persist.ml: Alcotest Class_def Filename Helpers Ident List Option Printf Result Schema Seed_core Seed_error Seed_schema Seed_util Spades_tool Unix Value Version_id
