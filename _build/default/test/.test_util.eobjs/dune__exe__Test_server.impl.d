test/test_server.ml: Alcotest Fmt Helpers List Option Seed_core Seed_error Seed_schema Seed_server Seed_util String Version_id
