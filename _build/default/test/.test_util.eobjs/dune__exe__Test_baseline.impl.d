test/test_baseline.ml: Alcotest Helpers List Result Seed_baseline Seed_core Seed_schema Seed_util Value
