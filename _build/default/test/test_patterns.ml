(* Patterns and variants: invisibility, inheritance expansion, update
   propagation, protection of inherited information, variant families
   (paper, §Patterns and Variants, Fig. 5). *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module View = Seed_core.View
module Item = Seed_core.Item
module Variant = Seed_core.Variant

(* A deadline-style schema: procedures to specify, with a deadline that
   some of them share through a pattern (the paper's own example). *)
let proc_schema () =
  Schema.of_defs_exn
    [
      Class_def.v [ "Procedure" ];
      Class_def.v ~card:Cardinality.opt ~content:Value_type.Date
        [ "Procedure"; "Deadline" ];
      Class_def.v ~card:Cardinality.opt ~content:Value_type.String
        [ "Procedure"; "Comment" ];
      Class_def.v [ "Module" ];
    ]
    [
      Assoc_def.v "Implements"
        [
          Assoc_def.role "impl" "Procedure";
          Assoc_def.role "target" "Module";
        ];
    ]

let test_patterns_invisible () =
  let db = DB.create (proc_schema ()) in
  let _p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  Alcotest.(check (option Alcotest.reject)) "not retrievable" None
    (DB.find_object db "Std");
  Alcotest.(check bool) "but addressable as pattern" true
    (DB.find_pattern db "Std" <> None);
  Alcotest.(check int) "not counted" 0 (DB.object_count db)

let test_pattern_namespace_shared () =
  let db = DB.create (proc_schema ()) in
  let _p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  check_err "name taken" is_duplicate
    (DB.create_object db ~cls:"Procedure" ~name:"Std" ())

let test_inherited_sub_objects_visible () =
  let db = DB.create (proc_schema ()) in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let deadline =
    ok
      (DB.create_sub_object db ~parent:p ~role:"Deadline"
         ~value:(Value.date 1986 12 31) ())
  in
  let proc = ok (DB.create_object db ~cls:"Procedure" ~name:"Parser" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:p ~inheritor:proc);
  (* the deadline appears in the inheritor's context *)
  let v = DB.view db in
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) proc) in
  let kids = View.children_v v (View.vitem_real item) in
  Alcotest.(check int) "one inherited child" 1 (List.length kids);
  let kid = List.hd kids in
  Alcotest.(check bool) "underlying is the pattern's item" true
    (Ident.equal kid.View.item.Item.id deadline);
  Alcotest.(check (option string)) "named in inheritor context"
    (Some "Parser.Deadline") (View.vitem_name v kid);
  Alcotest.(check bool) "marked inherited" true (kid.View.via <> None)

let test_pattern_update_propagates () =
  let db = DB.create (proc_schema ()) in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let deadline =
    ok (DB.create_sub_object db ~parent:p ~role:"Deadline" ~value:(Value.date 1986 6 1) ())
  in
  let procs =
    List.map
      (fun n ->
        let id = ok (DB.create_object db ~cls:"Procedure" ~name:n ()) in
        check_ok "inherit" (DB.inherit_pattern db ~pattern:p ~inheritor:id);
        id)
      [ "Parser"; "Lexer"; "Printer" ]
  in
  let v = DB.view db in
  let deadline_of id =
    let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) id) in
    match View.child_v v (View.vitem_real item) ~role:"Deadline" () with
    | Some kid -> (Option.get (View.obj_state v kid.View.item)).Item.value
    | None -> None
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) "initial deadline" true
        (deadline_of id = Some (Value.date 1986 6 1)))
    procs;
  (* one update in the pattern reaches every inheritor *)
  check_ok "postpone" (DB.set_value db deadline (Some (Value.date 1986 12 31)));
  List.iter
    (fun id ->
      Alcotest.(check bool) "new deadline everywhere" true
        (deadline_of id = Some (Value.date 1986 12 31)))
    procs

let test_inherited_info_not_updatable_via_inheritor () =
  (* inherited sub-objects keep their own identity; updating them updates
     the pattern — there is no way to give one inheritor its own copy,
     which is exactly the paper's guarantee. What must hold: the
     inheritor context offers no second, private deadline slot. *)
  let db = DB.create (proc_schema ()) in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let _ = ok (DB.create_sub_object db ~parent:p ~role:"Deadline" ~value:(Value.date 1986 6 1) ()) in
  let proc = ok (DB.create_object db ~cls:"Procedure" ~name:"Parser" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:p ~inheritor:proc);
  (* Deadline is 0..1 and the inherited one occupies the slot *)
  check_err "own deadline refused" is_duplicate
    (DB.create_sub_object db ~parent:proc ~role:"Deadline"
       ~value:(Value.date 1987 1 1) ())

let test_pattern_update_checked_against_inheritors () =
  (* patterns are not checked for counting consistency unless inherited:
     an inheritance that would overflow the combined context is refused,
     and once inherited, pattern updates are checked in every
     inheritor's context and rolled back on conflict *)
  let db = DB.create (proc_schema ()) in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let proc = ok (DB.create_object db ~cls:"Procedure" ~name:"Parser" ()) in
  (* the inheritor brings its own deadline *)
  let _own =
    ok
      (DB.create_sub_object db ~parent:proc ~role:"Deadline"
         ~value:(Value.date 1987 1 1) ())
  in
  (* a pattern deadline on top would exceed Deadline 0..1 *)
  let pd = ok (DB.create_sub_object db ~parent:p ~role:"Deadline" ~value:(Value.date 1986 6 1) ()) in
  check_err "inheriting would overflow the context" is_cardinality
    (DB.inherit_pattern db ~pattern:p ~inheritor:proc);
  (* repair the pattern, inherit, then try to break it through the
     pattern side *)
  ok (DB.delete db pd);
  check_ok "inherit now" (DB.inherit_pattern db ~pattern:p ~inheritor:proc);
  check_err "pattern update now checked in context" is_cardinality
    (DB.create_sub_object db ~parent:p ~role:"Deadline"
       ~value:(Value.date 1986 6 1) ());
  Alcotest.(check int) "pattern rolled back to empty" 0
    (List.length (DB.children db p))

let test_inheritance_cycles_refused () =
  let db = DB.create (proc_schema ()) in
  let p1 = ok (DB.create_object db ~cls:"Procedure" ~name:"P1" ~pattern:true ()) in
  let p2 = ok (DB.create_object db ~cls:"Procedure" ~name:"P2" ~pattern:true ()) in
  check_ok "p2 inherits p1" (DB.inherit_pattern db ~pattern:p1 ~inheritor:p2);
  check_err "cycle" is_pattern_violation
    (DB.inherit_pattern db ~pattern:p2 ~inheritor:p1);
  check_err "self" is_pattern_violation
    (DB.inherit_pattern db ~pattern:p1 ~inheritor:p1);
  check_err "double" is_pattern_violation
    (DB.inherit_pattern db ~pattern:p1 ~inheritor:p2)

let test_transitive_inheritance () =
  let db = DB.create (proc_schema ()) in
  let base = ok (DB.create_object db ~cls:"Procedure" ~name:"Base" ~pattern:true ()) in
  let _ = ok (DB.create_sub_object db ~parent:base ~role:"Deadline" ~value:(Value.date 1986 1 1) ()) in
  let mid = ok (DB.create_object db ~cls:"Procedure" ~name:"Mid" ~pattern:true ()) in
  let _ = ok (DB.create_sub_object db ~parent:mid ~role:"Comment" ~value:(Value.String "std") ()) in
  check_ok "mid inherits base" (DB.inherit_pattern db ~pattern:base ~inheritor:mid);
  let proc = ok (DB.create_object db ~cls:"Procedure" ~name:"Parser" ()) in
  check_ok "proc inherits mid" (DB.inherit_pattern db ~pattern:mid ~inheritor:proc);
  let v = DB.view db in
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) proc) in
  let kids = View.children_v v (View.vitem_real item) in
  (* both the Comment (from Mid) and the Deadline (from Base) appear *)
  Alcotest.(check int) "two inherited children" 2 (List.length kids)

let test_non_pattern_cannot_be_inherited () =
  let db = DB.create (proc_schema ()) in
  let normal = ok (DB.create_object db ~cls:"Procedure" ~name:"N" ()) in
  let other = ok (DB.create_object db ~cls:"Procedure" ~name:"O" ()) in
  check_err "normal not inheritable" is_pattern_violation
    (DB.inherit_pattern db ~pattern:normal ~inheritor:other)

let test_pattern_with_inheritors_not_deletable () =
  let db = DB.create (proc_schema ()) in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let proc = ok (DB.create_object db ~cls:"Procedure" ~name:"Parser" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:p ~inheritor:proc);
  check_err "delete refused" is_pattern_violation (DB.delete db p);
  check_ok "uninherit" (DB.uninherit_pattern db ~pattern:p ~inheritor:proc);
  check_ok "delete now" (DB.delete db p)

let test_uninherit () =
  let db = DB.create (proc_schema ()) in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let _ = ok (DB.create_sub_object db ~parent:p ~role:"Deadline" ~value:(Value.date 1986 6 1) ()) in
  let proc = ok (DB.create_object db ~cls:"Procedure" ~name:"Parser" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:p ~inheritor:proc);
  check_ok "uninherit" (DB.uninherit_pattern db ~pattern:p ~inheritor:proc);
  let v = DB.view db in
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) proc) in
  Alcotest.(check int) "no children left" 0
    (List.length (View.children_v v (View.vitem_real item)));
  check_err "not inherited" is_pattern_violation
    (DB.uninherit_pattern db ~pattern:p ~inheritor:proc)

(* --- pattern relationships and variants (Fig. 5) -------------------- *)

let test_pattern_relationships_expand () =
  let db = DB.create (proc_schema ()) in
  let common = ok (DB.create_object db ~cls:"Module" ~name:"Kernel" ()) in
  let po = ok (DB.create_object db ~cls:"Procedure" ~name:"PO" ~pattern:true ()) in
  let pr =
    ok
      (DB.create_relationship db ~assoc:"Implements" ~endpoints:[ po; common ]
         ~pattern:true ())
  in
  (* the pattern relationship is invisible *)
  Alcotest.(check (list Alcotest.reject)) "invisible on common" []
    (DB.relationships db common);
  let v1 = ok (DB.create_object db ~cls:"Procedure" ~name:"VariantA" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:po ~inheritor:v1);
  (* now VariantA is implicitly related to Kernel *)
  let v = DB.view db in
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) v1) in
  let vrels = View.rels_v v item in
  Alcotest.(check int) "one inherited rel" 1 (List.length vrels);
  let vr = List.hd vrels in
  Alcotest.(check bool) "substituted endpoints" true
    (vr.View.endpoints = [ v1; common ]);
  Alcotest.(check bool) "underlying is the pattern rel" true
    (Ident.equal vr.View.rel.Item.id pr)

let test_relationship_with_pattern_endpoint_must_be_pattern () =
  let db = DB.create (proc_schema ()) in
  let common = ok (DB.create_object db ~cls:"Module" ~name:"Kernel" ()) in
  let po = ok (DB.create_object db ~cls:"Procedure" ~name:"PO" ~pattern:true ()) in
  check_err "normal rel to pattern" is_pattern_violation
    (DB.create_relationship db ~assoc:"Implements" ~endpoints:[ po; common ] ())

let test_variant_family_fig5 () =
  let db = DB.create (proc_schema ()) in
  let common = ok (DB.create_object db ~cls:"Module" ~name:"Common" ()) in
  let po1 = ok (DB.create_object db ~cls:"Procedure" ~name:"PO1" ~pattern:true ()) in
  let po2 = ok (DB.create_object db ~cls:"Procedure" ~name:"PO2" ~pattern:true ()) in
  let _pr1 =
    ok (Variant.connect_common db ~pattern:po1 ~assoc:"Implements" ~pattern_role:"impl" ~common)
  in
  let _pr2 =
    ok (Variant.connect_common db ~pattern:po2 ~assoc:"Implements" ~pattern_role:"impl" ~common)
  in
  let va = ok (DB.create_object db ~cls:"Procedure" ~name:"VariantA" ()) in
  let vb = ok (DB.create_object db ~cls:"Procedure" ~name:"VariantB" ()) in
  check_ok "A joins" (Variant.add_variant db ~member:va ~patterns:[ po1; po2 ]);
  check_ok "B joins" (Variant.add_variant db ~member:vb ~patterns:[ po1; po2 ]);
  let v = DB.view db in
  let members = Variant.members v ~patterns:[ po1; po2 ] in
  Alcotest.(check int) "two variants" 2 (List.length members);
  (* both variants are connected to the common part identically *)
  Alcotest.(check bool) "shared common part" true
    (Variant.shares_common v ~patterns:[ po1; po2 ]);
  let item id = Option.get (Seed_core.Db_state.find_item (DB.raw db) id) in
  let commons_a = Variant.common_of v ~member:(item va) ~assoc:"Implements" in
  Alcotest.(check int) "A sees common" 1 (List.length commons_a);
  Alcotest.(check bool) "it is Common" true
    (Ident.equal (List.hd commons_a).Item.id common);
  (* dropping one variant's membership breaks the sharing *)
  check_ok "B leaves po2" (Variant.remove_variant db ~member:vb ~patterns:[ po2 ]);
  let members = Variant.members v ~patterns:[ po1; po2 ] in
  Alcotest.(check int) "one full member left" 1 (List.length members)

let test_variants_differ_from_alternatives () =
  (* variants coexist inside one database version; alternatives are
     different versions. Check both mechanisms coexist. *)
  let db = DB.create (proc_schema ()) in
  let common = ok (DB.create_object db ~cls:"Module" ~name:"Common" ()) in
  let po = ok (DB.create_object db ~cls:"Procedure" ~name:"PO" ~pattern:true ()) in
  let _ = ok (Variant.connect_common db ~pattern:po ~assoc:"Implements" ~pattern_role:"impl" ~common) in
  let va = ok (DB.create_object db ~cls:"Procedure" ~name:"VariantA" ()) in
  check_ok "join" (Variant.add_variant db ~member:va ~patterns:[ po ]);
  let v1 = ok (DB.create_version db) in
  (* an alternative without the variant *)
  ok (DB.begin_alternative db ~from_:v1 ());
  check_ok "leave" (Variant.remove_variant db ~member:va ~patterns:[ po ]);
  let _alt = ok (DB.create_version db) in
  ok (DB.begin_alternative db ~from_:v1 ());
  let v = DB.view db in
  Alcotest.(check int) "variant still in 1.0-based current" 1
    (List.length (Variant.members v ~patterns:[ po ]))

let test_pattern_visibility_in_versions () =
  let db = DB.create (proc_schema ()) in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let d = ok (DB.create_sub_object db ~parent:p ~role:"Deadline" ~value:(Value.date 1986 6 1) ()) in
  let proc = ok (DB.create_object db ~cls:"Procedure" ~name:"Parser" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:p ~inheritor:proc);
  let v1 = ok (DB.create_version db) in
  check_ok "postpone" (DB.set_value db d (Some (Value.date 1986 12 31)));
  let _v2 = ok (DB.create_version db) in
  (* the old version still sees the old inherited value *)
  let old_view = ok (DB.view_at db v1) in
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) proc) in
  (match View.child_v old_view (View.vitem_real item) ~role:"Deadline" () with
  | Some kid ->
    Alcotest.(check bool) "old value" true
      ((Option.get (View.obj_state old_view kid.View.item)).Item.value
      = Some (Value.date 1986 6 1))
  | None -> Alcotest.fail "inherited child missing in old view")

let () =
  Alcotest.run "patterns"
    [
      ( "visibility",
        [
          tc "patterns invisible to retrieval" test_patterns_invisible;
          tc "shared namespace" test_pattern_namespace_shared;
        ] );
      ( "inheritance",
        [
          tc "inherited sub-objects" test_inherited_sub_objects_visible;
          tc "update propagation" test_pattern_update_propagates;
          tc "inherited slot occupied" test_inherited_info_not_updatable_via_inheritor;
          tc "checked once inherited" test_pattern_update_checked_against_inheritors;
          tc "cycles refused" test_inheritance_cycles_refused;
          tc "transitive" test_transitive_inheritance;
          tc "normals not inheritable" test_non_pattern_cannot_be_inherited;
          tc "delete protection" test_pattern_with_inheritors_not_deletable;
          tc "uninherit" test_uninherit;
        ] );
      ( "variants",
        [
          tc "pattern relationships expand" test_pattern_relationships_expand;
          tc "pattern endpoint forces pattern rel"
            test_relationship_with_pattern_endpoint_must_be_pattern;
          tc "fig 5 family" test_variant_family_fig5;
          tc "variants vs alternatives" test_variants_differ_from_alternatives;
          tc "patterns and versions" test_pattern_visibility_in_versions;
        ] );
    ]
