(* The ER algebra: sources, operators, and the "undefined items produce
   no phantom rows" property. *)

open Helpers
module DB = Seed_core.Database
module A = Seed_core.Er_algebra

(* a small plant-control world on the Fig. 3 schema *)
let setup () =
  let db = fresh_db () in
  let mk name cls = ok (DB.create_object db ~cls ~name ()) in
  let alarms = mk "Alarms" "OutputData" in
  let events = mk "Events" "InputData" in
  let config = mk "Config" "InputData" in
  let sensor = mk "Sensor" "Action" in
  let handler = mk "Handler" "Action" in
  let logger = mk "Logger" "Action" in
  let _misc = mk "Misc" "Thing" in
  let rel a e k = ignore (ok (DB.create_relationship db ~assoc:a ~endpoints:[ e; k ] ())) in
  rel "Write" alarms sensor;
  rel "Read" events handler;
  rel "Read" config handler;
  rel "Read" config logger;
  rel "Contained" logger handler;
  db

let v db = DB.view db

let test_objects_source () =
  let db = setup () in
  let v = v db in
  Alcotest.(check int) "data incl. specializations" 3
    (A.cardinality (A.objects v ~cls:"Data"));
  Alcotest.(check int) "inputs" 2 (A.cardinality (A.objects v ~cls:"InputData"));
  Alcotest.(check int) "things = everything" 7
    (A.cardinality (A.objects v ~cls:"Thing"));
  Alcotest.(check int) "unknown class empty" 0
    (A.cardinality (A.objects v ~cls:"Nope"))

let test_relationship_source () =
  let db = setup () in
  let v = v db in
  Alcotest.(check int) "reads" 3 (A.cardinality (A.relationship v ~assoc:"Read"));
  Alcotest.(check int) "accesses include specializations" 4
    (A.cardinality (A.relationship v ~assoc:"Access"));
  Alcotest.(check int) "contained" 1
    (A.cardinality (A.relationship v ~assoc:"Contained"));
  Alcotest.(check int) "arity" 2 (A.arity (A.relationship v ~assoc:"Read"))

let test_select_and_project () =
  let db = setup () in
  let v = v db in
  let reads = A.relationship v ~assoc:"Read" in
  let by_handler =
    A.select_obj reads ~col:1 (fun it ->
        Seed_core.View.full_name v it = Some "Handler")
  in
  Alcotest.(check int) "handler reads two" 2 (A.cardinality by_handler);
  let sources = A.project by_handler ~cols:[ 0 ] in
  Alcotest.(check (list (list string))) "projected" [ [ "Config" ]; [ "Events" ] ]
    (List.sort compare (A.names v sources))

let test_project_duplicates_collapse () =
  let db = setup () in
  let v = v db in
  let reads = A.relationship v ~assoc:"Read" in
  let readers = A.project reads ~cols:[ 1 ] in
  (* handler appears twice among rows but once after projection *)
  Alcotest.(check int) "distinct readers" 2 (A.cardinality readers)

let test_join () =
  let db = setup () in
  let v = v db in
  (* what does the container of each contained action read?
     Contained(contained, container) join col1=container with
     Read(from, by) on col1=by *)
  let contained = A.relationship v ~assoc:"Contained" in
  let reads = A.relationship v ~assoc:"Read" in
  let joined = A.join contained 1 reads 1 in
  (* rows: (logger, handler, data-read-by-handler) *)
  Alcotest.(check int) "arity" 3 (A.arity joined);
  Alcotest.(check (list (list string))) "rows"
    [ [ "Logger"; "Handler"; "Config" ]; [ "Logger"; "Handler"; "Events" ] ]
    (List.sort compare (A.names v joined))

let test_product () =
  let db = setup () in
  let v = v db in
  let inputs = A.objects v ~cls:"InputData" in
  let actions = A.objects v ~cls:"Action" in
  Alcotest.(check int) "product" 6 (A.cardinality (A.product inputs actions))

let test_set_operations () =
  let db = setup () in
  let v = v db in
  let readers = A.project (A.relationship v ~assoc:"Read") ~cols:[ 1 ] in
  let writers = A.project (A.relationship v ~assoc:"Write") ~cols:[ 1 ] in
  let both = ok (A.union readers writers) in
  Alcotest.(check int) "union" 3 (A.cardinality both);
  let neither = ok (A.diff (A.objects v ~cls:"Action") both) in
  Alcotest.(check int) "idle actions" 0 (A.cardinality neither);
  let pure_readers = ok (A.diff readers writers) in
  Alcotest.(check int) "pure readers" 2 (A.cardinality pure_readers);
  let overlap = ok (A.inter readers writers) in
  Alcotest.(check int) "overlap" 0 (A.cardinality overlap);
  check_err "arity mismatch"
    (function Seed_util.Seed_error.Invalid_operation _ -> true | _ -> false)
    (A.union readers (A.relationship v ~assoc:"Read"))

let test_no_phantom_rows_for_undefined () =
  (* an object with no relationships joins into nothing: ER operations
     are defined on existing relationships only *)
  let db = setup () in
  let v = v db in
  let misc_rows =
    A.select_obj (A.relationship v ~assoc:"Access") ~col:0 (fun it ->
        Seed_core.View.full_name v it = Some "Misc")
  in
  Alcotest.(check int) "no phantom rows" 0 (A.cardinality misc_rows)

let test_inherited_relationships_in_algebra () =
  let db = fresh_db () in
  let common = ok (DB.create_object db ~cls:"Action" ~name:"Common" ()) in
  let po = ok (DB.create_object db ~cls:"Data" ~name:"PO" ~pattern:true ()) in
  let _ =
    ok
      (DB.create_relationship db ~assoc:"Access" ~endpoints:[ po; common ]
         ~pattern:true ())
  in
  let v1 = ok (DB.create_object db ~cls:"Data" ~name:"V1" ()) in
  let v2 = ok (DB.create_object db ~cls:"Data" ~name:"V2" ()) in
  check_ok "v1 joins" (DB.inherit_pattern db ~pattern:po ~inheritor:v1);
  check_ok "v2 joins" (DB.inherit_pattern db ~pattern:po ~inheritor:v2);
  let v = DB.view db in
  let accesses = A.relationship v ~assoc:"Access" in
  (* both inheritors appear with the pattern substituted; the pattern
     relationship itself is invisible *)
  Alcotest.(check (list (list string))) "expanded rows"
    [ [ "V1"; "Common" ]; [ "V2"; "Common" ] ]
    (List.sort compare (A.names v accesses))

let test_algebra_respects_versions () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"InputData" ~name:"D" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let r = ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ d; a ] ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.delete db r);
  let _v2 = ok (DB.create_version db) in
  Alcotest.(check int) "gone now" 0
    (A.cardinality (A.relationship (DB.view db) ~assoc:"Read"));
  let old_view = ok (DB.view_at db v1) in
  Alcotest.(check int) "in 1.0" 1
    (A.cardinality (A.relationship old_view ~assoc:"Read"))

let test_column_and_bounds () =
  let db = setup () in
  let v = v db in
  let reads = A.relationship v ~assoc:"Read" in
  Alcotest.(check int) "distinct col 0" 2 (List.length (A.column reads 0));
  Alcotest.check_raises "column oob" (Invalid_argument "Er_algebra.column")
    (fun () -> ignore (A.column reads 5));
  Alcotest.check_raises "project oob"
    (Invalid_argument "Er_algebra.project: column out of range") (fun () ->
      ignore (A.project reads ~cols:[ 2 ]));
  Alcotest.check_raises "of_rows arity"
    (Invalid_argument "Er_algebra.of_rows: arity mismatch") (fun () ->
      ignore (A.of_rows ~arity:2 [ [] ]))

let () =
  Alcotest.run "algebra"
    [
      ( "sources",
        [
          tc "objects" test_objects_source;
          tc "relationships" test_relationship_source;
        ] );
      ( "operators",
        [
          tc "select/project" test_select_and_project;
          tc "projection collapses" test_project_duplicates_collapse;
          tc "join" test_join;
          tc "product" test_product;
          tc "set operations" test_set_operations;
          tc "bounds" test_column_and_bounds;
        ] );
      ( "semantics",
        [
          tc "no phantom rows" test_no_phantom_rows_for_undefined;
          tc "pattern expansion" test_inherited_relationships_in_algebra;
          tc "version views" test_algebra_respects_versions;
        ] );
    ]
