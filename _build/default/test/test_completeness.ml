(* Completeness information is checked only on demand: minimum
   cardinalities, covering conditions, undefined values (paper,
   §Incomplete data). *)

open Seed_schema
open Helpers
module DB = Seed_core.Database
module C = Seed_core.Completeness

let has pred report = List.exists pred report

let is_missing_sub ?role report =
  has
    (function
      | C.Missing_sub_objects m -> (
        match role with None -> true | Some r -> String.equal m.role r)
      | _ -> false)
    report

let is_missing_participation ?assoc report =
  has
    (function
      | C.Missing_participation m -> (
        match assoc with None -> true | Some a -> String.equal m.assoc a)
      | _ -> false)
    report

let is_unspecialized_class report =
  has (function C.Unspecialized_class _ -> true | _ -> false) report

let is_unspecialized_assoc report =
  has (function C.Unspecialized_assoc _ -> true | _ -> false) report

let is_undefined_value report =
  has (function C.Undefined_value _ -> true | _ -> false) report

let test_incomplete_entry_is_accepted () =
  (* the paper's example (2): under Fig. 2 cardinalities a conventional
     DBMS cannot accept 'Alarms' without its Read and Write; SEED can *)
  let db = DB.create (fig2_schema ()) in
  check_ok "bare data object accepted"
    (Result.map (fun _ -> ()) (DB.create_object db ~cls:"Data" ~name:"Alarms" ()));
  let report = DB.completeness_report db in
  Alcotest.(check bool) "read missing" true (is_missing_participation ~assoc:"Read" report);
  Alcotest.(check bool) "write missing" true
    (is_missing_participation ~assoc:"Write" report);
  Alcotest.(check bool) "not complete" false (DB.is_complete db)

let test_min_participation_satisfied () =
  let db = DB.create (fig2_schema ()) in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let h = ok (DB.create_object db ~cls:"Action" ~name:"H" ()) in
  let _ = ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ alarms; h ] ()) in
  let _ = ok (DB.create_relationship db ~assoc:"Write" ~endpoints:[ alarms; h ] ()) in
  Alcotest.(check bool) "complete now" true (DB.is_complete db)

let test_min_sub_objects () =
  let db = DB.create (fig2_schema ()) in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  (* Text requires a Body (1..1) *)
  let report = DB.completeness_report db in
  Alcotest.(check bool) "body missing" true (is_missing_sub ~role:"Body" report);
  let _ =
    ok (DB.create_sub_object db ~parent:text ~role:"Body" ~value:(Value.String "b") ())
  in
  let report = DB.completeness_report db in
  Alcotest.(check bool) "body satisfied" false (is_missing_sub ~role:"Body" report)

let test_undefined_value_diagnosed () =
  let db = DB.create (fig2_schema ()) in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let body = ok (DB.create_sub_object db ~parent:text ~role:"Body" ()) in
  Alcotest.(check bool) "undefined body" true
    (is_undefined_value (DB.completeness_report db));
  check_ok "define" (DB.set_value db body (Some (Value.String "text")));
  Alcotest.(check bool) "defined" false
    (is_undefined_value (DB.completeness_report db))

let test_covering_class () =
  let db = fresh_db () in
  let t = ok (DB.create_object db ~cls:"Thing" ~name:"T" ()) in
  Alcotest.(check bool) "thing unspecialized" true
    (is_unspecialized_class (DB.completeness_report db));
  ok (DB.reclassify db t ~to_:"Action");
  Alcotest.(check bool) "action precise enough" false
    (is_unspecialized_class (DB.completeness_report db));
  (* Data is not covering in the Fig. 3 schema: sitting there is fine *)
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  Alcotest.(check bool) "data ok" false
    (is_unspecialized_class (DB.completeness_report db))

let test_covering_assoc () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let r = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ d; a ] ()) in
  Alcotest.(check bool) "access unspecialized" true
    (is_unspecialized_assoc (DB.completeness_report db));
  ok (DB.reclassify db d ~to_:"InputData");
  ok (DB.reclassify db r ~to_:"Read");
  Alcotest.(check bool) "read precise" false
    (is_unspecialized_assoc (DB.completeness_report db))

let test_generalized_minimum_either_specialization_counts () =
  (* 'Access by 1..*' with Read/Write 'by 0..*': either a read or a
     write access satisfies the condition (paper, §Vague data) *)
  let db = fresh_db () in
  let i = ok (DB.create_object db ~cls:"InputData" ~name:"I" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  Alcotest.(check bool) "action needs access" true
    (is_missing_participation ~assoc:"Access" (DB.completeness_report db));
  let _ = ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ i; a ] ()) in
  Alcotest.(check bool) "read satisfies access minimum" false
    (is_missing_participation ~assoc:"Access" (DB.completeness_report db))

let test_report_names_subjects () =
  let db = DB.create (fig2_schema ()) in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let _ = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let report = DB.completeness_report db in
  let subjects =
    List.filter_map
      (function
        | C.Missing_sub_objects { subject; _ } -> Some subject
        | _ -> None)
      report
  in
  Alcotest.(check bool) "names composed" true
    (List.mem "Alarms.Text[0]" subjects);
  (* diagnostics print *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "printable" true
        (String.length (Fmt.str "%a" C.pp_diagnostic d) > 0))
    report

let test_deleted_items_not_reported () =
  let db = DB.create (fig2_schema ()) in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  ok (DB.delete db alarms);
  Alcotest.(check int) "empty report" 0 (List.length (DB.completeness_report db))

let test_patterns_not_reported () =
  let db = DB.create (fig2_schema ()) in
  let _p = ok (DB.create_object db ~cls:"Data" ~name:"Template" ~pattern:true ()) in
  (* the pattern is as incomplete as can be, yet unchecked *)
  Alcotest.(check int) "patterns invisible" 0
    (List.length (DB.completeness_report db))

let test_completeness_versus_consistency_partition () =
  (* minima never block updates; maxima and ACYCLIC always do — the
     information partition that defines SEED *)
  let db = DB.create (fig2_schema ()) in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  Alcotest.(check bool) "incomplete but present" true (DB.exists db alarms);
  let h = ok (DB.create_object db ~cls:"Action" ~name:"H" ()) in
  check_err "self containment refused" is_cycle
    (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ h; h ] ())

let test_check_single_object () =
  let db = DB.create (fig2_schema ()) in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let ok_obj = ok (DB.create_object db ~cls:"Action" ~name:"H" ()) in
  let v = DB.view db in
  let item id = Option.get (Seed_core.Db_state.find_item (DB.raw db) id) in
  Alcotest.(check bool) "alarms incomplete" true
    (C.check_object v (item alarms) <> []);
  Alcotest.(check bool) "action complete" true (C.check_object v (item ok_obj) = [])

let () =
  Alcotest.run "completeness"
    [
      ( "minimum cardinalities",
        [
          tc "incomplete entry accepted (paper ex. 2)" test_incomplete_entry_is_accepted;
          tc "participation satisfied" test_min_participation_satisfied;
          tc "sub-object minima" test_min_sub_objects;
          tc "generalized minimum (read or write)"
            test_generalized_minimum_either_specialization_counts;
        ] );
      ( "covering",
        [ tc "classes" test_covering_class; tc "associations" test_covering_assoc ] );
      ( "values",
        [ tc "undefined values" test_undefined_value_diagnosed ] );
      ( "reporting",
        [
          tc "subjects named" test_report_names_subjects;
          tc "deleted silent" test_deleted_items_not_reported;
          tc "patterns silent" test_patterns_not_reported;
          tc "partition demo" test_completeness_versus_consistency_partition;
          tc "single object check" test_check_single_object;
        ] );
    ]
