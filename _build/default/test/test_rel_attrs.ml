(* Relationship attributes (Fig. 3: NumberOfWrites 1..1 and the
   (abort, repeat) error handling mode on Write). *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module C = Seed_core.Completeness

let setup () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"OutputData" ~name:"Alarms" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"Sensor" ()) in
  let w = ok (DB.create_relationship db ~assoc:"Write" ~endpoints:[ d; a ] ()) in
  (db, d, a, w)

let test_set_and_get () =
  let db, _, _, w = setup () in
  Alcotest.(check (option Alcotest.reject)) "undefined" None
    (DB.rel_attr db w "NumberOfWrites");
  check_ok "set" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 2)));
  Alcotest.(check bool) "read back" true
    (DB.rel_attr db w "NumberOfWrites" = Some (Value.Int 2));
  check_ok "overwrite" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 3)));
  Alcotest.(check bool) "overwritten" true
    (DB.rel_attr db w "NumberOfWrites" = Some (Value.Int 3));
  check_ok "undefine" (DB.set_rel_attr db w "NumberOfWrites" None);
  Alcotest.(check (option Alcotest.reject)) "undefined again" None
    (DB.rel_attr db w "NumberOfWrites")

let test_type_checked () =
  let db, _, _, w = setup () in
  check_err "string into int" is_type
    (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.String "two")));
  check_err "bad enum constant" is_type
    (DB.set_rel_attr db w "OnError" (Some (Value.Enum "explode")));
  check_ok "good enum" (DB.set_rel_attr db w "OnError" (Some (Value.Enum "repeat")))

let test_undeclared_refused () =
  let db, _, _, w = setup () in
  check_err "unknown attribute"
    (function Seed_error.Schema_violation _ -> true | _ -> false)
    (DB.set_rel_attr db w "Nonsense" (Some (Value.Int 1)))

let test_objects_have_no_rel_attrs () =
  let db, d, _, _ = setup () in
  check_err "object refused"
    (function Seed_error.Unknown_item _ -> true | _ -> false)
    (DB.set_rel_attr db d "NumberOfWrites" (Some (Value.Int 1)))

let test_required_attr_is_completeness_information () =
  let db, _, _, w = setup () in
  (* the Write exists without its required attribute: accepted, but
     reported *)
  let missing report =
    List.exists
      (function
        | C.Missing_attribute { attr = "NumberOfWrites"; _ } -> true
        | _ -> false)
      report
  in
  Alcotest.(check bool) "reported" true (missing (DB.completeness_report db));
  check_ok "define" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 1)));
  Alcotest.(check bool) "satisfied" false (missing (DB.completeness_report db));
  (* the optional OnError is never demanded *)
  Alcotest.(check bool) "optional silent" false
    (List.exists
       (function C.Missing_attribute { attr = "OnError"; _ } -> true | _ -> false)
       (DB.completeness_report db))

let test_generalizing_with_attr_refused () =
  let db, _, _, w = setup () in
  check_ok "define" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 1)));
  (* Access has no NumberOfWrites: the defined attribute pins the
     classification *)
  check_err "pinned"
    (function Seed_error.Schema_violation _ -> true | _ -> false)
    (DB.reclassify db w ~to_:"Access");
  check_ok "undefine" (DB.set_rel_attr db w "NumberOfWrites" None);
  check_ok "now it generalizes" (DB.reclassify db w ~to_:"Access");
  (* and the attribute is no longer settable *)
  check_err "gone with the classification"
    (function Seed_error.Schema_violation _ -> true | _ -> false)
    (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 1)))

let test_attrs_versioned () =
  let db, _, _, w = setup () in
  check_ok "v1 value" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 1)));
  let v1 = ok (DB.create_version db) in
  check_ok "v2 value" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 5)));
  let _v2 = ok (DB.create_version db) in
  Alcotest.(check bool) "current" true
    (DB.rel_attr db w "NumberOfWrites" = Some (Value.Int 5));
  ok (DB.select_version db (Some v1));
  Alcotest.(check bool) "old view" true
    (DB.rel_attr db w "NumberOfWrites" = Some (Value.Int 1));
  ok (DB.select_version db None)

let test_attrs_persisted () =
  let db, _, _, w = setup () in
  check_ok "set" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 7)));
  check_ok "enum" (DB.set_rel_attr db w "OnError" (Some (Value.Enum "abort")));
  let db2 = ok (Seed_core.Persist.decode_db (Seed_core.Persist.encode_db db)) in
  Alcotest.(check bool) "int survives" true
    (DB.rel_attr db2 w "NumberOfWrites" = Some (Value.Int 7));
  Alcotest.(check bool) "enum survives" true
    (DB.rel_attr db2 w "OnError" = Some (Value.Enum "abort"))

let test_attr_rollback_on_veto () =
  let schema =
    Schema.of_defs_exn
      [ Class_def.v [ "D" ]; Class_def.v [ "A" ] ]
      [
        Assoc_def.v
          ~attrs:[ Assoc_def.attr "Count" Value_type.Int ]
          ~procedures:[ "guard" ] "Link"
          [ Assoc_def.role "from" "D"; Assoc_def.role "by" "A" ];
      ]
  in
  let db = DB.create schema in
  let veto = ref false in
  DB.register_procedure db "guard" (fun _ _ ->
      if !veto then
        Error (Seed_error.Vetoed { procedure = "guard"; reason = "no" })
      else Ok ());
  let d = ok (DB.create_object db ~cls:"D" ~name:"d" ()) in
  let a = ok (DB.create_object db ~cls:"A" ~name:"a" ()) in
  let l = ok (DB.create_relationship db ~assoc:"Link" ~endpoints:[ d; a ] ()) in
  check_ok "allowed" (DB.set_rel_attr db l "Count" (Some (Value.Int 1)));
  veto := true;
  check_err "vetoed" is_vetoed (DB.set_rel_attr db l "Count" (Some (Value.Int 2)));
  Alcotest.(check bool) "rolled back" true
    (DB.rel_attr db l "Count" = Some (Value.Int 1))

let test_inherited_attr_declarations () =
  (* attributes declared on a generalized association are available to
     its specializations *)
  let schema =
    Schema.of_defs_exn
      [ Class_def.v [ "D" ]; Class_def.v [ "A" ] ]
      [
        Assoc_def.v
          ~attrs:[ Assoc_def.attr "Weight" Value_type.Float ]
          "Link"
          [ Assoc_def.role "from" "D"; Assoc_def.role "by" "A" ];
        Assoc_def.v ~super:"Link" "Strong"
          [ Assoc_def.role "from" "D"; Assoc_def.role "by" "A" ];
      ]
  in
  let db = DB.create schema in
  let d = ok (DB.create_object db ~cls:"D" ~name:"d" ()) in
  let a = ok (DB.create_object db ~cls:"A" ~name:"a" ()) in
  let s = ok (DB.create_relationship db ~assoc:"Strong" ~endpoints:[ d; a ] ()) in
  check_ok "inherited declaration"
    (DB.set_rel_attr db s "Weight" (Some (Value.Float 0.5)));
  (* generalizing keeps it: Weight is declared on the super *)
  check_ok "generalize with attr" (DB.reclassify db s ~to_:"Link");
  Alcotest.(check bool) "still there" true
    (DB.rel_attr db s "Weight" = Some (Value.Float 0.5))

let test_attr_clash_in_schema () =
  let r =
    Schema.of_defs
      [ Class_def.v [ "D" ]; Class_def.v [ "A" ] ]
      [
        Assoc_def.v
          ~attrs:[ Assoc_def.attr "W" Value_type.Int ]
          "Link"
          [ Assoc_def.role "from" "D"; Assoc_def.role "by" "A" ];
        Assoc_def.v ~super:"Link"
          ~attrs:[ Assoc_def.attr "W" Value_type.Float ]
          "Strong"
          [ Assoc_def.role "from" "D"; Assoc_def.role "by" "A" ];
      ]
  in
  check_err "clash"
    (function Seed_error.Schema_violation _ -> true | _ -> false)
    r

let test_spades_sets_number_of_writes () =
  let module S = Spades_tool.Spades in
  let t = S.create () in
  let _ = ok (S.note_thing t "Alarms" ()) in
  let _ = ok (S.note_thing t "Sensor" ()) in
  let w = ok (S.add_flow t ~data:"Alarms" ~action:"Sensor" S.Writing) in
  let db = S.db t in
  Alcotest.(check bool) "defaulted" true
    (DB.rel_attr db w "NumberOfWrites" = Some (Value.Int 1));
  Alcotest.(check bool) "implementable" true (S.is_implementable t)

let () =
  Alcotest.run "rel_attrs"
    [
      ( "basics",
        [
          tc "set and get" test_set_and_get;
          tc "types" test_type_checked;
          tc "undeclared" test_undeclared_refused;
          tc "objects refused" test_objects_have_no_rel_attrs;
        ] );
      ( "semantics",
        [
          tc "required = completeness info" test_required_attr_is_completeness_information;
          tc "attrs pin classification" test_generalizing_with_attr_refused;
          tc "versioned" test_attrs_versioned;
          tc "persisted" test_attrs_persisted;
          tc "veto rollback" test_attr_rollback_on_veto;
          tc "inherited declarations" test_inherited_attr_declarations;
          tc "declaration clash" test_attr_clash_in_schema;
          tc "spades default" test_spades_sets_number_of_writes;
        ] );
    ]
