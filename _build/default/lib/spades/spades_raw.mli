(** The pre-SEED SPADES configuration: the same specification-level
    workload implemented over plain in-memory structures with no DBMS —
    no consistency checking, no versions, no completeness reporting.

    The paper reports that SPADES-on-SEED "has become considerably
    slower, but much more flexible"; benchmark S1 drives identical
    workloads through {!Spades} and this module to measure that
    slowdown. *)

type t

val create : unit -> t

val note_thing : t -> string -> ?description:string -> unit -> unit
val classify_data : t -> string -> unit
val classify_action : t -> string -> unit
val classify_input : t -> string -> unit
val classify_output : t -> string -> unit
val describe : t -> string -> string -> unit
val add_keyword : t -> string -> string -> unit

val add_flow : t -> data:string -> action:string -> Spades.flow -> unit
val refine_flow : t -> data:string -> action:string -> Spades.flow -> unit
(** Raw structures have no relationship identity; refinement rewrites
    the triple in place. *)

val contain : t -> container:string -> action:string -> unit

val object_count : t -> int
val flow_count : t -> int
