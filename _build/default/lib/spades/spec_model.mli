(** The SPADES specification schema — the data model of a primitive
    specification system where actions, data, and data flow may be
    represented (paper, Figs. 2 and 3), with the generalizations of
    Fig. 3 so vague information can be entered and refined.

    Classes:
    - [Thing] — covering generalization of [Data] and [Action], with
      [Description] (0..1 STRING), [Revised] (0..1 DATE) and
      [Keywords] (0..8 STRING);
    - [Data] isa [Thing], with [Text] (0..16), each text having
      [Body] (1..1 STRING) and [Selector] (0..1 STRING);
    - [InputData], [OutputData] isa [Data];
    - [Action] isa [Thing], with [ErrorHandling]
      (0..1 ENUM(abort,repeat)).

    Associations:
    - [Access] (from: Data 0..any, by: Action 1..many), covering;
    - [Read] isa [Access] (from: InputData, by: Action, both 0..any);
    - [Write] isa [Access] (to: OutputData, by: Action, both 0..any),
      carrying the relationship attributes [NumberOfWrites] (INT,
      required) and [OnError] (ENUM(abort,repeat), optional);
    - [Contained] (contained: Action 0..1, container: Action 0..any),
      [ACYCLIC] — the tree structure on actions. *)

val schema : Seed_schema.Schema.t
(** The validated specification schema (revision 1). *)

val schema_defs :
  unit -> Seed_schema.Class_def.t list * Seed_schema.Assoc_def.t list
(** The raw definitions, for tests and for deriving evolved revisions. *)
