open Seed_schema
module Raw = Seed_baseline.Raw_store

type t = Raw.t

let create () = Raw.create ()

let note_thing t name ?description () =
  Raw.put_object t ~name ~cls:"Thing";
  match description with
  | None -> ()
  | Some d -> Raw.set_attr t ~name ~attr:"Description" (Value.String d)

let reclass t name cls = Raw.put_object t ~name ~cls

let classify_data t name = reclass t name "Data"
let classify_action t name = reclass t name "Action"
let classify_input t name = reclass t name "InputData"
let classify_output t name = reclass t name "OutputData"

let describe t name d = Raw.set_attr t ~name ~attr:"Description" (Value.String d)

let add_keyword t name kw =
  (* raw stores overwrite; keywords concatenate to stay comparable *)
  let prev =
    match Raw.get_attr t ~name ~attr:"Keywords" with
    | Some (Value.String s) -> s ^ ","
    | Some _ | None -> ""
  in
  Raw.set_attr t ~name ~attr:"Keywords" (Value.String (prev ^ kw))

let assoc_name = function
  | Spades.Vague -> "Access"
  | Spades.Reading -> "Read"
  | Spades.Writing -> "Write"

let add_flow t ~data ~action flow =
  Raw.add_rel t ~assoc:(assoc_name flow) ~from_:data ~to_:action

let refine_flow t ~data ~action flow =
  (* no identity: drop matching triples, re-add with the refined kind *)
  let keep =
    List.filter
      (fun (_, f, to_) -> not (String.equal f data && String.equal to_ action))
      (Raw.rels_of t data)
  in
  Raw.delete_object t data;
  Raw.put_object t ~name:data ~cls:"Data";
  List.iter (fun (a, f, to_) -> Raw.add_rel t ~assoc:a ~from_:f ~to_) keep;
  Raw.add_rel t ~assoc:(assoc_name flow) ~from_:data ~to_:action

let contain t ~container ~action =
  Raw.add_rel t ~assoc:"Contained" ~from_:action ~to_:container

let object_count = Raw.object_count
let flow_count = Raw.rel_count
