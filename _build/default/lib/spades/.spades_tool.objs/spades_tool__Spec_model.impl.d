lib/spades/spec_model.ml: Assoc_def Cardinality Class_def Schema Seed_schema Value_type
