lib/spades/spec_model.mli: Seed_schema
