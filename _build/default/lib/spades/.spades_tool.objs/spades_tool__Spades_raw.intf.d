lib/spades/spades_raw.mli: Spades
