lib/spades/spades.mli: Format Ident Seed_core Seed_error Seed_schema Seed_util Value Version_id
