lib/spades/spades.ml: Fmt Ident List Schema Seed_core Seed_error Seed_schema Seed_util Spec_model String Value
