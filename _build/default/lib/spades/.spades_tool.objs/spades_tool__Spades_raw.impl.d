lib/spades/spades_raw.ml: List Seed_baseline Seed_schema Spades String Value
