open Seed_schema

let c = Cardinality.between
let unlimited = Cardinality.any
let at_least = Cardinality.at_least

let schema_defs () =
  let classes =
    [
      (* the vague root: everything starts as a Thing *)
      Class_def.v ~covering:true [ "Thing" ];
      Class_def.v ~card:(c 0 1) ~content:Value_type.String
        [ "Thing"; "Description" ];
      Class_def.v ~card:(c 0 1) ~content:Value_type.Date [ "Thing"; "Revised" ];
      Class_def.v ~card:(c 0 8) ~content:Value_type.String
        [ "Thing"; "Keywords" ];
      Class_def.v ~super:"Thing" [ "Data" ];
      Class_def.v ~card:(c 0 16) [ "Data"; "Text" ];
      Class_def.v ~card:(c 1 1) ~content:Value_type.String
        [ "Data"; "Text"; "Body" ];
      Class_def.v ~card:(c 0 1) ~content:Value_type.String
        [ "Data"; "Text"; "Selector" ];
      Class_def.v ~super:"Data" [ "InputData" ];
      Class_def.v ~super:"Data" [ "OutputData" ];
      Class_def.v ~super:"Thing" [ "Action" ];
      Class_def.v ~card:(c 0 1)
        ~content:(Value_type.Enum [ "abort"; "repeat" ])
        [ "Action"; "ErrorHandling" ];
    ]
  in
  let assocs =
    [
      Assoc_def.v ~covering:true "Access"
        [
          Assoc_def.role ~card:unlimited "from" "Data";
          Assoc_def.role ~card:(at_least 1) "by" "Action";
        ];
      Assoc_def.v ~super:"Access" "Read"
        [
          Assoc_def.role ~card:unlimited "from" "InputData";
          Assoc_def.role ~card:unlimited "by" "Action";
        ];
      (* Fig. 3 annotates Write with NumberOfWrites 1..1 and the
         (abort, repeat) error handling mode *)
      Assoc_def.v ~super:"Access"
        ~attrs:
          [
            Assoc_def.attr ~required:true "NumberOfWrites" Value_type.Int;
            Assoc_def.attr "OnError" (Value_type.Enum [ "abort"; "repeat" ]);
          ]
        "Write"
        [
          Assoc_def.role ~card:unlimited "to" "OutputData";
          Assoc_def.role ~card:unlimited "by" "Action";
        ];
      (* each action is contained in at most one container (a tree),
         while a container may hold any number of actions *)
      Assoc_def.v ~acyclic:true "Contained"
        [
          Assoc_def.role ~card:(c 0 1) "contained" "Action";
          Assoc_def.role ~card:unlimited "container" "Action";
        ];
    ]
  in
  (classes, assocs)

let schema =
  let classes, assocs = schema_defs () in
  Schema.of_defs_exn classes assocs
