open Seed_util
open Seed_schema
open Seed_error
module Database = Seed_core.Database
module Query = Seed_core.Query
module View = Seed_core.View
module Item = Seed_core.Item
module Completeness = Seed_core.Completeness

type t = { database : Database.t }

let create () = { database = Database.create Spec_model.schema }
let db t = t.database

let obj t name =
  match Database.find_object t.database name with
  | Some id -> Ok id
  | None -> fail (Unknown_object name)

let note_thing t name ?description () =
  let* id = Database.create_object t.database ~cls:"Thing" ~name () in
  let* () =
    match description with
    | None -> Ok ()
    | Some text ->
      let* _ =
        Database.create_sub_object t.database ~parent:id ~role:"Description"
          ~value:(Value.String text) ()
      in
      Ok ()
  in
  Ok id

(* Re-classify towards [target]; succeeds silently when the object is
   already there or somewhere below. *)
let refine_class t name target =
  let* id = obj t name in
  match Database.class_of t.database id with
  | None -> fail (Unknown_object name)
  | Some cls ->
    let schema = Database.schema t.database in
    if Schema.class_is_a schema ~sub:cls ~super:target then Ok ()
    else Database.reclassify t.database id ~to_:target

let classify_data t name = refine_class t name "Data"
let classify_action t name = refine_class t name "Action"
let classify_input t name = refine_class t name "InputData"
let classify_output t name = refine_class t name "OutputData"

let set_single_sub t name ~role value =
  let* id = obj t name in
  match Database.resolve t.database (name ^ "." ^ role) with
  | Some sub -> Database.set_value t.database sub (Some value)
  | None ->
    let* _ =
      Database.create_sub_object t.database ~parent:id ~role ~value ()
    in
    Ok ()

let describe t name text = set_single_sub t name ~role:"Description" (Value.String text)

let add_keyword t name kw =
  let* id = obj t name in
  let* _ =
    Database.create_sub_object t.database ~parent:id ~role:"Keywords"
      ~value:(Value.String kw) ()
  in
  Ok ()

let add_text t ~data ~body ?selector () =
  let* () = classify_data t data in
  let* id = obj t data in
  let* text = Database.create_sub_object t.database ~parent:id ~role:"Text" () in
  let* _ =
    Database.create_sub_object t.database ~parent:text ~role:"Body"
      ~value:(Value.String body) ()
  in
  let* () =
    match selector with
    | None -> Ok ()
    | Some s ->
      let* _ =
        Database.create_sub_object t.database ~parent:text ~role:"Selector"
          ~value:(Value.String s) ()
      in
      Ok ()
  in
  Ok text

let set_revised t name date =
  set_single_sub t name ~role:"Revised" (Value.Date date)

type flow = Vague | Reading | Writing

let flow_assoc = function
  | Vague -> "Access"
  | Reading -> "Read"
  | Writing -> "Write"

let data_target = function
  | Vague -> "Data"
  | Reading -> "InputData"
  | Writing -> "OutputData"

(* the tool's convention: a fresh Write writes once unless told
   otherwise, so Fig. 3's required NumberOfWrites is always defined *)
let default_write_attrs t rel = function
  | Writing ->
    Database.set_rel_attr t.database rel "NumberOfWrites" (Some (Value.Int 1))
  | Vague | Reading -> Ok ()

let add_flow t ~data ~action flow =
  let* () = refine_class t data (data_target flow) in
  let* () = classify_action t action in
  let* d = obj t data in
  let* a = obj t action in
  let* rel =
    Database.create_relationship t.database ~assoc:(flow_assoc flow)
      ~endpoints:[ d; a ] ()
  in
  let* () = default_write_attrs t rel flow in
  Ok rel

let refine_flow t rel flow =
  match Database.endpoints t.database rel with
  | [ d; _ ] -> (
    let* () =
      match Database.full_name t.database d with
      | Some name -> refine_class t name (data_target flow)
      | None -> fail (Unknown_item (Ident.to_string d))
    in
    match Database.assoc_of t.database rel with
    | Some a when String.equal a (flow_assoc flow) -> Ok ()
    | Some _ ->
      let* () = Database.reclassify t.database rel ~to_:(flow_assoc flow) in
      default_write_attrs t rel flow
    | None -> fail (Unknown_item (Ident.to_string rel)))
  | _ -> fail (Unknown_item (Ident.to_string rel))

let contain t ~container ~action =
  let* () = classify_action t container in
  let* () = classify_action t action in
  let* c = obj t container in
  let* a = obj t action in
  Database.create_relationship t.database ~assoc:"Contained"
    ~endpoints:[ a; c ] ()

type maturity = {
  things : int;
  data : int;
  actions : int;
  vague_flows : int;
  precise_flows : int;
  diagnostics : Completeness.diagnostic list;
}

let maturity t =
  let v = Database.view t.database in
  let exact cls = Query.count v (Query.in_class cls) in
  let rels = View.all_rels v in
  let with_assoc name =
    List.length
      (List.filter
         (fun (r : Item.t) ->
           match View.rel_state v r with
           | Some rs -> String.equal rs.Item.assoc name
           | None -> false)
         rels)
  in
  {
    things = exact "Thing";
    data = Query.count v (Query.is_a "Data");
    actions = exact "Action";
    vague_flows = with_assoc "Access";
    precise_flows = with_assoc "Read" + with_assoc "Write";
    diagnostics = Database.completeness_report t.database;
  }

let is_implementable t =
  let m = maturity t in
  m.things = 0 && m.vague_flows = 0 && m.diagnostics = []

let save_milestone t = Database.create_version t.database

let pp_maturity ppf m =
  Fmt.pf ppf
    "@[<v>things still vague: %d@,\
     data objects: %d@,\
     actions: %d@,\
     vague data flows: %d@,\
     precise data flows: %d@,\
     completeness diagnostics: %d@]"
    m.things m.data m.actions m.vague_flows m.precise_flows
    (List.length m.diagnostics)
