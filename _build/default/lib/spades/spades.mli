(** SPADES-mini: a specification and design tool built on SEED.

    SEED was designed as the database of the SPADES specification system
    [9]; this module is a faithful miniature of that tool layer. It
    exposes specification-level operations (note a thing, refine it into
    data or an action, record data flow, structure actions into a
    containment tree) and maps them onto the SEED operational interface.

    Development is evolutionary: information is accepted independently
    of its formality and completeness, but the collected information is
    kept consistent at every stage; {!maturity} reports how far the
    specification still is from the "sufficiently formal, complete and
    precise" final state. *)

open Seed_util
open Seed_schema

type t

val create : unit -> t
(** A fresh specification database under {!Spec_model.schema}. *)

val db : t -> Seed_core.Database.t
(** The underlying SEED database, for direct access (versions, patterns,
    queries). *)

(** {1 Entering and refining things} *)

val note_thing : t -> string -> ?description:string -> unit ->
  (Ident.t, Seed_error.t) result
(** Enter vague information: "there is a thing with this name". *)

val classify_data : t -> string -> (unit, Seed_error.t) result
(** Refine: the thing is a data object. *)

val classify_action : t -> string -> (unit, Seed_error.t) result

val classify_input : t -> string -> (unit, Seed_error.t) result
(** Data → InputData. Also accepts a [Thing] directly. *)

val classify_output : t -> string -> (unit, Seed_error.t) result

val describe : t -> string -> string -> (unit, Seed_error.t) result
(** Set or replace the [Description] of a thing. *)

val add_keyword : t -> string -> string -> (unit, Seed_error.t) result

val add_text : t -> data:string -> body:string -> ?selector:string -> unit ->
  (Ident.t, Seed_error.t) result
(** Attach a text block to a data object (Fig. 1's
    ['Alarms.Text.Body']). *)

val set_revised : t -> string -> Value.date -> (unit, Seed_error.t) result

(** {1 Data flow} *)

type flow = Vague | Reading | Writing

val add_flow :
  t -> data:string -> action:string -> flow -> (Ident.t, Seed_error.t) result
(** Record a data flow between a data object and an action. [Vague]
    enters an [Access] relationship — "there is a dataflow, we do not
    yet know whether it is a read or a write". *)

val refine_flow : t -> Ident.t -> flow -> (unit, Seed_error.t) result
(** Specialize (or re-generalize) an access relationship. Refining to
    [Reading]/[Writing] also re-classifies the data endpoint to
    [InputData]/[OutputData] when it is still too general. *)

val contain : t -> container:string -> action:string ->
  (Ident.t, Seed_error.t) result
(** Place an action inside a container action (the ACYCLIC tree). *)

(** {1 Reports} *)

type maturity = {
  things : int;  (** objects still classified as bare [Thing] *)
  data : int;
  actions : int;
  vague_flows : int;  (** relationships still classified [Access] *)
  precise_flows : int;
  diagnostics : Seed_core.Completeness.diagnostic list;
}

val maturity : t -> maturity
(** The specification's distance from a fully formal state. *)

val is_implementable : t -> bool
(** No completeness diagnostics and nothing vague left. *)

val save_milestone : t -> (Version_id.t, Seed_error.t) result
(** Snapshot the current development state (paper: "the state of the
    development is saved after every larger modification"). *)

val pp_maturity : Format.formatter -> maturity -> unit
