type component = { name : string; index : int option }

type t = component list

let root n = [ { name = n; index = None } ]
let child ?index p role = p @ [ { name = role; index } ]

let parent = function
  | [] | [ _ ] -> None
  | p -> Some (List.filteri (fun i _ -> i < List.length p - 1) p)

let last = function
  | [] -> invalid_arg "Path.last: empty path"
  | p -> List.nth p (List.length p - 1)

let basename p = (last p).name
let depth = List.length
let is_root p = depth p = 1

let component_equal a b = String.equal a.name b.name && a.index = b.index

let equal a b = List.length a = List.length b && List.for_all2 component_equal a b

let component_compare a b =
  match String.compare a.name b.name with
  | 0 -> Option.compare Int.compare a.index b.index
  | c -> c

let compare a b = List.compare component_compare a b

let component_to_string c =
  match c.index with
  | None -> c.name
  | Some i -> Printf.sprintf "%s[%d]" c.name i

let to_string p = String.concat "." (List.map component_to_string p)
let pp ppf p = Fmt.string ppf (to_string p)

let parse_component s =
  let invalid () =
    Seed_error.fail (Seed_error.Invalid_operation ("malformed path component: " ^ s))
  in
  if String.equal s "" then invalid ()
  else
    match String.index_opt s '[' with
    | None ->
      if String.contains s ']' then invalid ()
      else Ok { name = s; index = None }
    | Some i ->
      if i = 0 || not (String.length s > i + 1 && s.[String.length s - 1] = ']')
      then invalid ()
      else
        let name = String.sub s 0 i in
        let digits = String.sub s (i + 1) (String.length s - i - 2) in
        (match int_of_string_opt digits with
        | Some idx when idx >= 0 -> Ok { name; index = Some idx }
        | Some _ | None -> invalid ())

let of_string s =
  if String.equal s "" then
    Seed_error.fail (Seed_error.Invalid_operation "empty path")
  else
    Seed_error.map_result parse_component (String.split_on_char '.' s)

let of_string_exn s = Seed_error.ok_exn (of_string s)

let strip_indices p = List.map (fun c -> c.name) p
let class_path_string p = String.concat "." (strip_indices p)

let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> component_equal a b && is_prefix p' q'

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
