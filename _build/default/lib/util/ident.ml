type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let to_string i = "#" ^ string_of_int i
let pp ppf i = Fmt.string ppf (to_string i)
let to_int i = i
let of_int i = i

module Gen = struct
  type t = { mutable last : int }

  let create () = { last = 0 }

  let next g =
    g.last <- g.last + 1;
    g.last

  let mark_used g id = if id > g.last then g.last <- id
  let current g = g.last
end

module Map = Map.Make (Int)
module Set = Set.Make (Int)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
