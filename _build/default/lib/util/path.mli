(** Composed names for hierarchically structured objects and classes.

    The name of a dependent object is composed of the name of its parent
    and of its role in the context of the parent (paper, Fig. 1):
    ['Alarms.Text.Body.Keywords[1]'] denotes the sub-object with role
    [Keywords] and index [1] of the sub-object [Body] of the sub-object
    [Text] of the independent object [Alarms].

    The same syntax (without indices) names classes:
    ['Data.Text.Selector'] is the sub-class [Selector] of sub-class
    [Text] of class [Data]. *)

type component = { name : string; index : int option }
(** One step of a path: a role name plus an optional index. Indices are
    only meaningful for sub-object roles whose class allows more than one
    instance per parent. *)

type t = component list
(** A non-empty list of components; the head is the independent object
    (or top-level class) name. *)

val root : string -> t
(** [root n] is the one-component path [n]. *)

val child : ?index:int -> t -> string -> t
(** [child p role] extends [p] with a component. *)

val parent : t -> t option
(** [parent p] drops the last component; [None] for a root path. *)

val last : t -> component
(** Final component. Raises [Invalid_argument] on the empty list. *)

val basename : t -> string
(** Name of the final component, without index. *)

val depth : t -> int
(** Number of components. *)

val is_root : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** Renders as dotted components with [\[i\]] suffixes. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, Seed_error.t) result
(** Parses the dotted syntax. Fails with [Invalid_operation] on empty
    components, malformed indices, or an empty string. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises {!Seed_error.Error}. *)

val strip_indices : t -> string list
(** The role names only — this is the class path a data path instantiates. *)

val class_path_string : t -> string
(** [strip_indices] rendered with dots: the class path denoted by a data
    path. *)

val is_prefix : t -> t -> bool
(** [is_prefix p q] is true iff [q] starts with all of [p]'s components. *)

module Map : Map.S with type key = t
