(** Decimal classification labels for versions.

    Versions are identified by a decimal classification; the
    classification tree reflects the version history (paper, §Versions).
    We use an RCS-like labelling over an explicit version tree:

    - trunk versions are [1.0], [2.0], [3.0], ...;
    - alternatives derived from trunk version [m.0] are labelled
      [m.1], [m.2], ...;
    - versions derived from a branch version [l] are labelled
      [l.1], [l.2], ... (appending a component).

    The label encodes nothing by itself; the authoritative parent
    relation lives in the version tree ({!Seed_core.Versioning}). *)

type t = private int list
(** A non-empty list of non-negative integers. *)

val trunk : int -> t
(** [trunk m] is the label [m.0] of the [m]-th trunk version. [m >= 1]. *)

val is_trunk : t -> bool
(** True for two-component labels ending in [0]. *)

val major : t -> int
(** First component. *)

val child : t -> int -> t
(** [child l k] is the label of the [k]-th alternative derived from [l]:
    [m.k] when [l] is trunk [m.0], and [l.k] otherwise. [k >= 1]. *)

val compare : t -> t -> int
(** Lexicographic order; coincides with creation order on the trunk. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Dotted rendering, e.g. ["2.0"], ["1.1.3"]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, Seed_error.t) result
(** Parses a dotted label; fails with [Unknown_version] on malformed
    input. *)

val of_string_exn : string -> t

val of_ints : int list -> (t, Seed_error.t) result
(** Validates and converts a raw component list (storage codec). *)

module Map : Map.S with type key = t
