lib/util/path.mli: Format Map Seed_error
