lib/util/ident.mli: Format Hashtbl Map Set
