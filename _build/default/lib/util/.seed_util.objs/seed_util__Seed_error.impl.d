lib/util/seed_error.ml: Fmt List Printexc Stdlib
