lib/util/seed_error.mli: Format
