lib/util/ident.ml: Fmt Hashtbl Int Map Set
