lib/util/version_id.ml: Fmt Int List Map Option Seed_error String
