lib/util/path.ml: Fmt Int List Map Option Printf Seed_error String
