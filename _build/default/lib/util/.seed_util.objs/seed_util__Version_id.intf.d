lib/util/version_id.mli: Format Map Seed_error
