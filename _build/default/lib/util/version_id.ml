type t = int list

let trunk m =
  if m < 1 then invalid_arg "Version_id.trunk: major must be >= 1";
  [ m; 0 ]

let is_trunk = function [ _; 0 ] -> true | _ -> false

let major = function
  | [] -> invalid_arg "Version_id.major: empty label"
  | m :: _ -> m

let child l k =
  if k < 1 then invalid_arg "Version_id.child: index must be >= 1";
  match l with [ m; 0 ] -> [ m; k ] | _ -> l @ [ k ]

let compare = List.compare Int.compare
let equal a b = compare a b = 0

let to_string l = String.concat "." (List.map string_of_int l)
let pp ppf l = Fmt.string ppf (to_string l)

let validate l =
  if l = [] || List.exists (fun c -> c < 0) l then
    Seed_error.fail (Seed_error.Unknown_version (to_string l))
  else Ok l

let of_ints = validate

let of_string s =
  let parts = String.split_on_char '.' s in
  let ints = List.map int_of_string_opt parts in
  if List.exists Option.is_none ints then
    Seed_error.fail (Seed_error.Unknown_version s)
  else validate (List.map Option.get ints)

let of_string_exn s = Seed_error.ok_exn (of_string s)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
