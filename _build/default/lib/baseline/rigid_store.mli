(** The conventional-DBMS baseline: full compliance on every entry.

    "The normal approach to database consistency is to require all data
    in the database to fully comply with the structures and constraints
    given in the schema. However, this approach prevents the entry of
    incomplete and vague information" (paper, §Managing vague and
    incomplete information).

    This store implements that normal approach over the same schema
    language as SEED: an insertion must arrive as a {e complete cluster}
    — objects together with all sub-objects and relationships required
    by the minimum cardinalities — or it is rejected outright. There is
    no generalization-based vagueness (objects must be classified in a
    leaf class when the generalization is covering), no
    re-classification (evolve by delete + re-insert), and no patterns.
    Versioning is full-copy ({!Full_copy}), after Tichy-style file
    versioning. *)

open Seed_util
open Seed_schema

type t

val create : Schema.t -> t

type new_obj = {
  no_name : string;
  no_cls : string;
  no_value : Value.t option;
  no_subs : (string * Value.t option) list;
      (** immediate sub-objects as [(role, value)]; multi-instance roles
          may repeat *)
}

type new_rel = {
  nr_assoc : string;
  nr_endpoints : string list;  (** object names, positional *)
}

val insert_cluster :
  t -> objs:new_obj list -> rels:new_rel list -> (unit, Seed_error.t) result
(** All-or-nothing insertion. Checks {e both} consistency and
    completeness information: class membership, value types, maximum
    cardinalities, acyclicity, minimum sub-object counts, minimum
    participation, and covering conditions (an object may not sit in a
    covering generalized class). *)

val delete_object : t -> string -> (unit, Seed_error.t) result
(** Physical removal, cascading to relationships — refused when it would
    leave a remaining object below a minimum participation bound (the
    conventional referential-integrity stance). *)

val set_value :
  t -> name:string -> ?role:string * int -> Value.t -> (unit, Seed_error.t) result
(** Update the value of an object or of one of its immediate
    sub-objects (addressed by role and position). *)

val mem : t -> string -> bool
val class_of : t -> string -> string option
val value_of : t -> string -> Value.t option
val sub_values : t -> string -> role:string -> Value.t list
val rels_of : t -> string -> (string * string list) list
val object_count : t -> int
val rel_count : t -> int

module Full_copy : sig
  type snapshot
  (** A deep copy of the whole store — the file-copy version baseline
      (Tichy [13]): space grows with database size, not delta size. *)

  val take : t -> snapshot
  val restore : t -> snapshot -> unit
  val size_bytes : snapshot -> int
end
