open Seed_util
open Seed_schema
open Seed_error

type sub = {
  su_role : string;
  su_idx : int;
  su_cls : string;
  mutable su_value : Value.t option;
}

type obj = {
  ob_cls : string;
  mutable ob_value : Value.t option;
  mutable ob_subs : sub list;
}

type rel = { re_assoc : string; re_endpoints : string list }

type t = {
  schema : Schema.t;
  objects : (string, obj) Hashtbl.t;
  mutable rels : rel list;
}

type new_obj = {
  no_name : string;
  no_cls : string;
  no_value : Value.t option;
  no_subs : (string * Value.t option) list;
}

type new_rel = { nr_assoc : string; nr_endpoints : string list }

let create schema = { schema; objects = Hashtbl.create 256; rels = [] }

let mem t name = Hashtbl.mem t.objects name

let class_of t name =
  Option.map (fun o -> o.ob_cls) (Hashtbl.find_opt t.objects name)

let value_of t name =
  Option.bind (Hashtbl.find_opt t.objects name) (fun o -> o.ob_value)

let sub_values t name ~role =
  match Hashtbl.find_opt t.objects name with
  | None -> []
  | Some o ->
    List.filter_map
      (fun s -> if String.equal s.su_role role then s.su_value else None)
      o.ob_subs

let rels_of t name =
  List.filter_map
    (fun r ->
      if List.exists (String.equal name) r.re_endpoints then
        Some (r.re_assoc, r.re_endpoints)
      else None)
    t.rels

let object_count t = Hashtbl.length t.objects
let rel_count t = List.length t.rels

(* --- staged validation -------------------------------------------- *)

let check_max ~element ~subject ~card count =
  if Cardinality.within_max card count then Ok ()
  else
    fail
      (Cardinality_violation
         { element; subject; bound = "max " ^ Cardinality.to_string card; count })

let check_min ~element ~subject ~card count =
  if Cardinality.meets_min card count then Ok ()
  else
    fail
      (Cardinality_violation
         { element; subject; bound = "min " ^ Cardinality.to_string card; count })

let validate_obj t (o : new_obj) =
  let* def = Schema.find_class_res t.schema o.no_cls in
  let* () =
    if Class_def.is_top_level def then Ok ()
    else fail (Invalid_operation (o.no_cls ^ " is a sub-class"))
  in
  let* () =
    if def.Class_def.covering then
      fail
        (Schema_violation
           (Printf.sprintf
              "%s: conventional store refuses objects in covering class %s; \
               classify precisely"
              o.no_name o.no_cls))
    else Ok ()
  in
  let* () =
    match (o.no_value, def.Class_def.content) with
    | None, Some _ ->
      fail
        (Schema_violation
           (o.no_name ^ ": value required by class " ^ o.no_cls))
    | None, None -> Ok ()
    | Some _, None ->
      fail
        (Type_mismatch
           { expected = "no content for " ^ o.no_cls; got = "a value" })
    | Some v, Some ty -> Value.check ty v
  in
  (* per-role counts, membership and values; completeness included *)
  let* subs =
    map_result
      (fun (role, value) ->
        let* sdef = Schema.resolve_child t.schema ~cls:o.no_cls ~role in
        let* () =
          match (value, sdef.Class_def.content) with
          | None, Some _ ->
            fail
              (Schema_violation
                 (Printf.sprintf "%s.%s: value required" o.no_name role))
          | None, None -> Ok ()
          | Some _, None ->
            fail
              (Type_mismatch
                 {
                   expected = "no content for " ^ Class_def.name sdef;
                   got = "a value";
                 })
          | Some v, Some ty -> Value.check ty v
        in
        Ok (role, sdef, value))
      o.no_subs
  in
  let roles = Schema.effective_children t.schema o.no_cls in
  let* () =
    iter_result
      (fun (role, (sdef : Class_def.t)) ->
        let count =
          List.length (List.filter (fun (r, _, _) -> String.equal r role) subs)
        in
        let* () =
          check_max ~element:(Class_def.name sdef) ~subject:o.no_name
            ~card:sdef.Class_def.card count
        in
        check_min ~element:(Class_def.name sdef) ~subject:o.no_name
          ~card:sdef.Class_def.card count)
      roles
  in
  (* deeper levels must not require anything we cannot express *)
  let* () =
    iter_result
      (fun (_, (sdef : Class_def.t), _) ->
        iter_result
          (fun (_, (deep : Class_def.t)) ->
            if deep.Class_def.card.Cardinality.min > 0 then
              fail
                (Schema_violation
                   (Printf.sprintf
                      "schema requires nested sub-objects below %s; the rigid \
                       baseline supports one level"
                      (Class_def.name sdef)))
            else Ok ())
          (Schema.effective_children t.schema (Class_def.name sdef)))
      subs
  in
  Ok
    ( o.no_name,
      {
        ob_cls = o.no_cls;
        ob_value = o.no_value;
        ob_subs =
          List.mapi
            (fun i (role, sdef, value) ->
              {
                su_role = role;
                su_idx = i;
                su_cls = Class_def.name sdef;
                su_value = value;
              })
            subs;
      } )

let class_of_staged t staged name =
  match List.assoc_opt name staged with
  | Some o -> Some o.ob_cls
  | None -> class_of t name

let participation t rels name ~assoc ~pos =
  (* count in existing + staged relationships *)
  let all = rels @ t.rels in
  List.length
    (List.filter
       (fun r ->
         Schema.assoc_is_a t.schema ~sub:r.re_assoc ~super:assoc
         && (match List.nth_opt r.re_endpoints pos with
            | Some e -> String.equal e name
            | None -> false))
       all)

let validate_rel t staged (r : new_rel) =
  let* def = Schema.find_assoc_res t.schema r.nr_assoc in
  let* () =
    if def.Assoc_def.covering then
      fail
        (Schema_violation
           ("conventional store refuses relationships in covering association "
          ^ r.nr_assoc))
    else Ok ()
  in
  let* () =
    if List.length r.nr_endpoints = Assoc_def.arity def then Ok ()
    else fail (Invalid_operation ("arity mismatch for " ^ r.nr_assoc))
  in
  iter_result
    (fun (i, name) ->
      let role = Assoc_def.nth_role def i in
      match class_of_staged t staged name with
      | None -> fail (Unknown_object name)
      | Some cls ->
        if Schema.class_is_a t.schema ~sub:cls ~super:role.Assoc_def.target
        then Ok ()
        else
          fail
            (Membership_violation
               {
                 expected = role.Assoc_def.target;
                 got = cls;
                 context = r.nr_assoc ^ "." ^ role.Assoc_def.role_name;
               }))
    (List.mapi (fun i e -> (i, e)) r.nr_endpoints)

let acyclic_ok t new_rels ~assoc =
  let all = new_rels @ t.rels in
  let edges =
    List.filter_map
      (fun r ->
        if Schema.assoc_is_a t.schema ~sub:r.re_assoc ~super:assoc then
          match r.re_endpoints with [ a; b ] -> Some (a, b) | _ -> None
        else None)
      all
  in
  (* DFS cycle detection over the string graph *)
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    edges;
  let state = Hashtbl.create 16 in
  (* 1 = in progress, 2 = done *)
  let rec dfs n =
    match Hashtbl.find_opt state n with
    | Some 1 -> false
    | Some _ -> true
    | None ->
      Hashtbl.replace state n 1;
      let ok =
        List.for_all dfs (Option.value ~default:[] (Hashtbl.find_opt adj n))
      in
      Hashtbl.replace state n 2;
      ok
  in
  List.for_all (fun (a, _) -> dfs a) edges

let insert_cluster t ~objs ~rels =
  (* uniqueness *)
  let* () =
    iter_result
      (fun o ->
        if mem t o.no_name then fail (Duplicate_name o.no_name) else Ok ())
      objs
  in
  let names = List.map (fun o -> o.no_name) objs in
  let* () =
    if List.length (List.sort_uniq String.compare names) = List.length names
    then Ok ()
    else fail (Invalid_operation "duplicate names within cluster")
  in
  let* staged = map_result (validate_obj t) objs in
  let* () = iter_result (validate_rel t staged) rels in
  let new_rels =
    List.map (fun r -> { re_assoc = r.nr_assoc; re_endpoints = r.nr_endpoints }) rels
  in
  (* maximum participation for every endpoint of new rels *)
  let* () =
    iter_result
      (fun r ->
        let* _def = Schema.find_assoc_res t.schema r.re_assoc in
        let levels =
          r.re_assoc :: Schema.assoc_supers t.schema r.re_assoc
        in
        iter_result
          (fun (i, name) ->
            iter_result
              (fun level ->
                match Schema.find_assoc t.schema level with
                | None -> fail (Unknown_association level)
                | Some d ->
                  let role = Assoc_def.nth_role d i in
                  check_max
                    ~element:(level ^ "." ^ role.Assoc_def.role_name)
                    ~subject:name ~card:role.Assoc_def.card
                    (participation t new_rels name ~assoc:level ~pos:i))
              levels)
          (List.mapi (fun i e -> (i, e)) r.re_endpoints))
      new_rels
  in
  (* minimum participation of the new objects — completeness enforced on
     entry, the defining property of the conventional approach *)
  let* () =
    iter_result
      (fun (name, (o : obj)) ->
        iter_result
          (fun ((adef : Assoc_def.t), pos, (role : Assoc_def.role)) ->
            check_min
              ~element:(adef.Assoc_def.name ^ "." ^ role.Assoc_def.role_name)
              ~subject:name ~card:role.Assoc_def.card
              (participation t new_rels name ~assoc:adef.Assoc_def.name
                 ~pos))
          (Schema.participation_constraints t.schema ~cls:o.ob_cls))
      staged
  in
  (* acyclicity *)
  let* () =
    iter_result
      (fun (a : Assoc_def.t) ->
        if a.Assoc_def.acyclic then
          if acyclic_ok t new_rels ~assoc:a.Assoc_def.name then Ok ()
          else fail (Cycle_detected a.Assoc_def.name)
        else Ok ())
      (Schema.assocs t.schema)
  in
  (* commit *)
  List.iter (fun (name, o) -> Hashtbl.replace t.objects name o) staged;
  t.rels <- new_rels @ t.rels;
  Ok ()

let delete_object t name =
  match Hashtbl.find_opt t.objects name with
  | None -> fail (Unknown_object name)
  | Some _ ->
    let removed, kept =
      List.partition
        (fun r -> List.exists (String.equal name) r.re_endpoints)
        t.rels
    in
    (* referential integrity: other endpoints must stay above minima *)
    let affected =
      List.concat_map (fun r -> r.re_endpoints) removed
      |> List.filter (fun n -> not (String.equal n name))
      |> List.sort_uniq String.compare
    in
    let participation_in rels n ~assoc ~pos =
      List.length
        (List.filter
           (fun r ->
             Schema.assoc_is_a t.schema ~sub:r.re_assoc ~super:assoc
             && (match List.nth_opt r.re_endpoints pos with
                | Some e -> String.equal e n
                | None -> false))
           rels)
    in
    let* () =
      iter_result
        (fun n ->
          match class_of t n with
          | None -> Ok ()
          | Some cls ->
            iter_result
              (fun ((adef : Assoc_def.t), pos, (role : Assoc_def.role)) ->
                check_min
                  ~element:(adef.Assoc_def.name ^ "." ^ role.Assoc_def.role_name)
                  ~subject:n ~card:role.Assoc_def.card
                  (participation_in kept n ~assoc:adef.Assoc_def.name ~pos))
              (Schema.participation_constraints t.schema ~cls))
        affected
    in
    Hashtbl.remove t.objects name;
    t.rels <- kept;
    Ok ()

let set_value t ~name ?role v =
  match Hashtbl.find_opt t.objects name with
  | None -> fail (Unknown_object name)
  | Some o -> (
    match role with
    | None -> (
      let* def = Schema.find_class_res t.schema o.ob_cls in
      match def.Class_def.content with
      | None ->
        fail
          (Type_mismatch
             { expected = "no content for " ^ o.ob_cls; got = "a value" })
      | Some ty ->
        let* () = Value.check ty v in
        o.ob_value <- Some v;
        Ok ())
    | Some (role, pos) -> (
      let matching =
        List.filter (fun s -> String.equal s.su_role role) o.ob_subs
      in
      match List.nth_opt matching pos with
      | None -> fail (Unknown_object (Printf.sprintf "%s.%s[%d]" name role pos))
      | Some sub -> (
        let* def = Schema.find_class_res t.schema sub.su_cls in
        match def.Class_def.content with
        | None ->
          fail
            (Type_mismatch
               { expected = "no content for " ^ sub.su_cls; got = "a value" })
        | Some ty ->
          let* () = Value.check ty v in
          sub.su_value <- Some v;
          Ok ())))

module Full_copy = struct
  type snapshot = string

  let take t =
    let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.objects [] in
    Marshal.to_string (bindings, t.rels) []

  let restore t snap =
    let bindings, rels =
      (Marshal.from_string snap 0 : (string * obj) list * rel list)
    in
    Hashtbl.reset t.objects;
    List.iter (fun (k, v) -> Hashtbl.replace t.objects k v) bindings;
    t.rels <- rels

  let size_bytes snap = String.length snap
end
