open Seed_schema

type obj = {
  mutable cls : string;
  attrs : (string, Value.t) Hashtbl.t;
}

type t = {
  objects : (string, obj) Hashtbl.t;
  mutable rels : (string * string * string) list;
}

let create () = { objects = Hashtbl.create 256; rels = [] }

let obj_of t name =
  match Hashtbl.find_opt t.objects name with
  | Some o -> o
  | None ->
    let o = { cls = ""; attrs = Hashtbl.create 4 } in
    Hashtbl.replace t.objects name o;
    o

let put_object t ~name ~cls =
  let o = obj_of t name in
  o.cls <- cls

let set_attr t ~name ~attr v = Hashtbl.replace (obj_of t name).attrs attr v

let get_attr t ~name ~attr =
  match Hashtbl.find_opt t.objects name with
  | Some o -> Hashtbl.find_opt o.attrs attr
  | None -> None

let add_rel t ~assoc ~from_ ~to_ = t.rels <- (assoc, from_, to_) :: t.rels

let mem t name = Hashtbl.mem t.objects name

let class_of t name =
  match Hashtbl.find_opt t.objects name with
  | Some o -> Some o.cls
  | None -> None

let rels_of t name =
  List.filter
    (fun (_, f, to_) -> String.equal f name || String.equal to_ name)
    t.rels

let delete_object t name =
  Hashtbl.remove t.objects name;
  t.rels <-
    List.filter
      (fun (_, f, to_) -> not (String.equal f name || String.equal to_ name))
      t.rels

let object_count t = Hashtbl.length t.objects
let rel_count t = List.length t.rels
