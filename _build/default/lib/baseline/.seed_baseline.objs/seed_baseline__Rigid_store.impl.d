lib/baseline/rigid_store.ml: Assoc_def Cardinality Class_def Hashtbl List Marshal Option Printf Schema Seed_error Seed_schema Seed_util String Value
