lib/baseline/raw_store.ml: Hashtbl List Seed_schema String Value
