lib/baseline/rigid_store.mli: Schema Seed_error Seed_schema Seed_util Value
