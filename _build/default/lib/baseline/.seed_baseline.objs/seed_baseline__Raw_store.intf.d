lib/baseline/raw_store.mli: Seed_schema Value
