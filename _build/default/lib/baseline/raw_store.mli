(** The no-database baseline: plain hash tables, no checking.

    This is what a tool keeps in memory when it does not use a DBMS at
    all — the configuration SPADES had before SEED. Benches compare SEED
    against it to quantify the paper's qualitative claim that SPADES
    "has become considerably slower, but much more flexible". *)

open Seed_schema

type t

val create : unit -> t

val put_object : t -> name:string -> cls:string -> unit
(** Insert or overwrite; no uniqueness or class checking. *)

val set_attr : t -> name:string -> attr:string -> Value.t -> unit
(** Attach an attribute value to an object; dangling names are created
    silently (no checking is the point). *)

val get_attr : t -> name:string -> attr:string -> Value.t option

val add_rel : t -> assoc:string -> from_:string -> to_:string -> unit

val mem : t -> string -> bool

val class_of : t -> string -> string option

val rels_of : t -> string -> (string * string * string) list
(** [(assoc, from, to)] triples involving the object. *)

val delete_object : t -> string -> unit
(** Physical removal, relationships included. *)

val object_count : t -> int
val rel_count : t -> int
