type t = {
  path : string list;
  card : Cardinality.t;
  content : Value_type.t option;
  super : string option;
  covering : bool;
  procedures : string list;
}

let v ?(card = Cardinality.any) ?content ?super ?(covering = false)
    ?(procedures = []) path =
  if path = [] then invalid_arg "Class_def.v: empty path";
  { path; card; content; super; covering; procedures }

let name c = String.concat "." c.path

let simple_name c = List.nth c.path (List.length c.path - 1)

let is_top_level c = List.length c.path = 1

let parent_name c =
  match c.path with
  | [] | [ _ ] -> None
  | p -> Some (String.concat "." (List.filteri (fun i _ -> i < List.length p - 1) p))

let pp ppf c =
  Fmt.pf ppf "@[<h>class %s%a%a%a%s@]" (name c)
    (fun ppf () ->
      if is_top_level c then () else Fmt.pf ppf " %a" Cardinality.pp c.card)
    ()
    (fun ppf -> function
      | None -> ()
      | Some ty -> Fmt.pf ppf " : %a" Value_type.pp ty)
    c.content
    (fun ppf -> function
      | None -> ()
      | Some s -> Fmt.pf ppf " isa %s" s)
    c.super
    (if c.covering then " (covering)" else "")
