(** Structural difference between two schema revisions.

    When the schema is modified, the interpretation of versions created
    before the modification becomes a problem; therefore SEED generates
    schema versions too (paper, §Versions). This module computes what
    changed between two schema revisions and classifies every change as
    {e compatible} (old data remains interpretable: additions, bound
    relaxations) or {e incompatible} (old data may violate the new
    schema: removals, bound tightenings, type changes). *)

type change =
  | Class_added of string
  | Class_removed of string
  | Class_content_changed of { cls : string; from_ : string; to_ : string }
  | Class_card_changed of {
      cls : string;
      from_ : Cardinality.t;
      to_ : Cardinality.t;
    }
  | Class_super_changed of {
      cls : string;
      from_ : string option;
      to_ : string option;
    }
  | Class_covering_changed of { cls : string; covering : bool }
  | Assoc_added of string
  | Assoc_removed of string
  | Assoc_roles_changed of string
  | Assoc_attrs_changed of { assoc : string; grew : bool }
      (** [grew] when the new revision only adds attributes — old
          relationships stay valid (missing required attributes are a
          completeness matter only) *)
  | Assoc_card_changed of {
      assoc : string;
      role : string;
      from_ : Cardinality.t;
      to_ : Cardinality.t;
    }
  | Assoc_acyclic_changed of { assoc : string; acyclic : bool }
  | Assoc_super_changed of {
      assoc : string;
      from_ : string option;
      to_ : string option;
    }
  | Assoc_covering_changed of { assoc : string; covering : bool }

type compatibility = Compatible | Incompatible

val classify : change -> compatibility
(** Additions and relaxations are {!Compatible}; removals, tightenings
    and retyping are {!Incompatible}. Minimum-cardinality changes are
    always compatible because minima are completeness information only. *)

val diff : Schema.t -> Schema.t -> change list
(** [diff old new_] lists all changes, classes first. *)

val compatible : Schema.t -> Schema.t -> bool
(** True when every change is {!Compatible}: data valid under [old] is
    valid under [new_]. *)

val pp_change : Format.formatter -> change -> unit
