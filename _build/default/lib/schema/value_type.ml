open Seed_util

type t = String | Int | Float | Bool | Date | Enum of string list

let equal a b =
  match (a, b) with
  | String, String | Int, Int | Float, Float | Bool, Bool | Date, Date -> true
  | Enum xs, Enum ys -> List.equal String.equal xs ys
  | (String | Int | Float | Bool | Date | Enum _), _ -> false

let to_string = function
  | String -> "STRING"
  | Int -> "INT"
  | Float -> "FLOAT"
  | Bool -> "BOOL"
  | Date -> "DATE"
  | Enum cs -> Printf.sprintf "ENUM(%s)" (String.concat "," cs)

let pp ppf t = Fmt.string ppf (to_string t)

let of_string s =
  match s with
  | "STRING" -> Ok String
  | "INT" -> Ok Int
  | "FLOAT" -> Ok Float
  | "BOOL" -> Ok Bool
  | "DATE" -> Ok Date
  | _ ->
    let n = String.length s in
    if n > 6 && String.sub s 0 5 = "ENUM(" && s.[n - 1] = ')' then
      let inner = String.sub s 5 (n - 6) in
      let cases = String.split_on_char ',' inner in
      if List.exists (String.equal "") cases then
        Seed_error.fail (Seed_error.Schema_violation ("bad value type: " ^ s))
      else Ok (Enum cases)
    else Seed_error.fail (Seed_error.Schema_violation ("bad value type: " ^ s))
