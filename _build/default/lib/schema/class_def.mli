(** Definition of an object class.

    A class is either {e top-level} (an independent object class such as
    [Data], possibly part of a generalization hierarchy via [super]) or a
    {e dependent sub-class} (such as [Data.Text.Body]) identified by the
    path of role names from its top-level ancestor.

    Fig. 2 of the paper: [Data] is a hierarchically structured class with
    sub-class [Data.Text] of cardinality [0..16], which in turn has
    sub-classes [Body] and [Selector]; [Selector] has [STRING]
    instances. *)

type t = {
  path : string list;  (** non-empty role-name path; singleton = top-level *)
  card : Cardinality.t;
      (** instances per parent object; meaningful for sub-classes only *)
  content : Value_type.t option;
      (** value type of instances, when instances carry a value *)
  super : string option;
      (** generalization: name of the super class (top-level classes
          only); e.g. [Data]'s super is [Thing] in Fig. 3 *)
  covering : bool;
      (** covering generalization: every instance must eventually be
          specialized into one of this class's specializations —
          completeness information *)
  procedures : string list;
      (** names of attached procedures triggered by updates of instances *)
}

val v :
  ?card:Cardinality.t ->
  ?content:Value_type.t ->
  ?super:string ->
  ?covering:bool ->
  ?procedures:string list ->
  string list ->
  t
(** [v path] builds a class definition. [card] defaults to [0..*]. *)

val name : t -> string
(** Dotted path, e.g. ["Data.Text.Body"]. *)

val simple_name : t -> string
(** Final path component. *)

val is_top_level : t -> bool

val parent_name : t -> string option
(** Dotted path of the enclosing class, for sub-classes. *)

val pp : Format.formatter -> t -> unit
