open Seed_util

type t = { min : int; max : int option }

let make min max =
  if min < 0 then invalid_arg "Cardinality.make: negative minimum";
  (match max with
  | Some m when m < min -> invalid_arg "Cardinality.make: max < min"
  | _ -> ());
  { min; max }

let exactly n = make n (Some n)
let opt = make 0 (Some 1)
let one = make 1 (Some 1)
let any = make 0 None
let at_least n = make n None
let between lo hi = make lo (Some hi)

let equal a b = a.min = b.min && a.max = b.max

let within_max c n = match c.max with None -> true | Some m -> n <= m
let meets_min c n = n >= c.min
let is_unbounded c = c.max = None

let to_string c =
  match c.max with
  | None -> Printf.sprintf "%d..*" c.min
  | Some m -> Printf.sprintf "%d..%d" c.min m

let pp ppf c = Fmt.string ppf (to_string c)

let of_string s =
  let fail () = Seed_error.fail (Seed_error.Invalid_cardinality s) in
  match String.index_opt s '.' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '.' ->
    let lo = String.sub s 0 i in
    let hi = String.sub s (i + 2) (String.length s - i - 2) in
    (match (int_of_string_opt lo, hi) with
    | Some lo, "*" when lo >= 0 -> Ok (make lo None)
    | Some lo, hi -> (
      match int_of_string_opt hi with
      | Some hi when lo >= 0 && hi >= lo -> Ok (make lo (Some hi))
      | Some _ | None -> fail ())
    | None, _ -> fail ())
  | Some _ | None -> fail ()
