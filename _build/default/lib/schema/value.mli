(** Runtime values of leaf sub-objects. *)

type date = { year : int; month : int; day : int }

type t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Date of date
  | Enum of string  (** one constant of an [Enum] value type *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val type_name : t -> string
(** The {!Value_type} rendering a value belongs to (enum constants render
    as [ENUM]). *)

val date : int -> int -> int -> t
(** [date y m d] builds a date value; raises [Invalid_argument] when the
    triple is not a plausible calendar date. *)

val check : Value_type.t -> t -> (unit, Seed_util.Seed_error.t) result
(** [check ty v] succeeds iff [v] is a legal value of type [ty]
    (including enum-constant membership). *)
