(** Cardinality bounds [min..max].

    Cardinalities appear in two places in a SEED schema (paper, Fig. 2):
    on sub-classes ("any object of class [Data] may have from zero up to
    16 objects of class [Data.Text]") and on association roles ("[Data]
    must have at least one [Read] relationship with an instance of
    [Action]").

    The paper partitions this information: the {e maximum} is consistency
    information, checked on every update; the {e minimum} is completeness
    information, checked only on demand. *)

type t = private { min : int; max : int option }
(** [max = None] renders as [*] (unlimited). Invariants: [min >= 0] and
    [max >= min] when present. *)

val make : int -> int option -> t
(** [make min max]; raises [Invalid_argument] on violated invariants. *)

val exactly : int -> t
(** [exactly n] is [n..n]. *)

val opt : t
(** [0..1]. *)

val one : t
(** [1..1]. *)

val any : t
(** [0..*]. *)

val at_least : int -> t
(** [n..*]. *)

val between : int -> int -> t
(** [between lo hi] is [lo..hi]. *)

val equal : t -> t -> bool

val within_max : t -> int -> bool
(** [within_max c n] — does a count of [n] respect the maximum bound? *)

val meets_min : t -> int -> bool
(** [meets_min c n] — does a count of [n] satisfy the minimum bound? *)

val is_unbounded : t -> bool

val to_string : t -> string
(** Renders as ["0..16"], ["1..*"], ... *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, Seed_util.Seed_error.t) result
(** Parses the ["lo..hi"] / ["lo..*"] syntax. *)
