open Seed_util
open Seed_error

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COLON
  | COMMA
  | DOTDOT
  | STAR
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COLON -> "':'"
  | COMMA -> "','"
  | DOTDOT -> "'..'"
  | STAR -> "'*'"
  | EOF -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let error msg = fail (Schema_violation (Printf.sprintf "line %d: %s" !line msg)) in
  let rec go i =
    if i >= n then begin
      tokens := (EOF, !line) :: !tokens;
      Ok (List.rev !tokens)
    end
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then begin
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      end
      else if c = '.' && i + 1 < n && src.[i + 1] = '.' then begin
        tokens := (DOTDOT, !line) :: !tokens;
        go (i + 2)
      end
      else if c >= '0' && c <= '9' then begin
        let rec eat j = if j < n && src.[j] >= '0' && src.[j] <= '9' then eat (j + 1) else j in
        let j = eat i in
        tokens := (INT (int_of_string (String.sub src i (j - i))), !line) :: !tokens;
        go j
      end
      else if is_ident_char c then begin
        let rec eat j = if j < n && is_ident_char src.[j] then eat (j + 1) else j in
        let j = eat i in
        tokens := (IDENT (String.sub src i (j - i)), !line) :: !tokens;
        go j
      end
      else
        let simple t =
          tokens := (t, !line) :: !tokens;
          go (i + 1)
        in
        match c with
        | '{' -> simple LBRACE
        | '}' -> simple RBRACE
        | '(' -> simple LPAREN
        | ')' -> simple RPAREN
        | '[' -> simple LBRACKET
        | ']' -> simple RBRACKET
        | ':' -> simple COLON
        | ',' -> simple COMMA
        | '*' -> simple STAR
        | _ -> error (Printf.sprintf "unexpected character %C" c)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let syntax_error line what got =
  fail
    (Schema_violation
       (Printf.sprintf "line %d: expected %s, found %s" line what
          (token_name got)))

let expect st tok what =
  let got, line = peek st in
  if got = tok then begin
    advance st;
    Ok ()
  end
  else syntax_error line what got

let ident st what =
  match peek st with
  | IDENT s, _ ->
    advance st;
    Ok s
  | got, line -> syntax_error line what got

(* keyword = a specific identifier appearing next *)
let at_keyword st kw = match peek st with IDENT s, _ -> s = kw | _ -> false

let eat_keyword st kw = if at_keyword st kw then (advance st; true) else false

let parse_card st =
  (* "[" INT ".." (INT | "*") "]" *)
  let* () = expect st LBRACKET "'['" in
  let* lo =
    match peek st with
    | INT n, _ ->
      advance st;
      Ok n
    | got, line -> syntax_error line "a minimum bound" got
  in
  let* () = expect st DOTDOT "'..'" in
  let* hi =
    match peek st with
    | INT n, _ ->
      advance st;
      Ok (Some n)
    | STAR, _ ->
      advance st;
      Ok None
    | got, line -> syntax_error line "a maximum bound or '*'" got
  in
  let* () = expect st RBRACKET "']'" in
  match hi with
  | Some h when h < lo ->
    fail (Invalid_cardinality (Printf.sprintf "%d..%d" lo h))
  | _ -> Ok (Cardinality.make lo hi)

let parse_opt_card st =
  match peek st with
  | LBRACKET, _ ->
    let* c = parse_card st in
    Ok (Some c)
  | _ -> Ok None

let parse_type st =
  let* name = ident st "a value type" in
  match name with
  | "STRING" -> Ok Value_type.String
  | "INT" -> Ok Value_type.Int
  | "FLOAT" -> Ok Value_type.Float
  | "BOOL" -> Ok Value_type.Bool
  | "DATE" -> Ok Value_type.Date
  | "ENUM" ->
    let* () = expect st LPAREN "'(' after ENUM" in
    let rec cases acc =
      let* c = ident st "an enum constant" in
      match peek st with
      | COMMA, _ ->
        advance st;
        cases (c :: acc)
      | _ ->
        let* () = expect st RPAREN "')'" in
        Ok (List.rev (c :: acc))
    in
    let* cs = cases [] in
    Ok (Value_type.Enum cs)
  | other ->
    fail (Schema_violation (Printf.sprintf "unknown value type %s" other))

let parse_procedures st =
  if not (eat_keyword st "procedures") then Ok []
  else
    let* () = expect st LPAREN "'('" in
    let rec go acc =
      let* p = ident st "a procedure name" in
      match peek st with
      | COMMA, _ ->
        advance st;
        go (p :: acc)
      | _ ->
        let* () = expect st RPAREN "')'" in
        Ok (List.rev (p :: acc))
    in
    go []

(* members of a class body; [path] is the enclosing class path *)
let rec parse_members st ~path acc =
  match peek st with
  | RBRACE, _ ->
    advance st;
    Ok (List.rev acc)
  | IDENT _, _ ->
    let* name = ident st "a member name" in
    let* content =
      match peek st with
      | COLON, _ ->
        advance st;
        let* ty = parse_type st in
        Ok (Some ty)
      | _ -> Ok None
    in
    let* card = parse_opt_card st in
    let card = Option.value card ~default:Cardinality.any in
    let* procedures = parse_procedures st in
    let member_path = path @ [ name ] in
    let def = Class_def.v ~card ?content ~procedures member_path in
    let* nested =
      match peek st with
      | LBRACE, _ ->
        advance st;
        parse_members st ~path:member_path []
      | _ -> Ok []
    in
    parse_members st ~path (List.rev_append (def :: nested) acc)
  | got, line -> syntax_error line "a member name or '}'" got

let parse_class st =
  let* name = ident st "a class name" in
  let* super =
    if eat_keyword st "isa" then
      let* s = ident st "a super class" in
      Ok (Some s)
    else Ok None
  in
  let covering = eat_keyword st "covering" in
  let* procedures = parse_procedures st in
  let def = Class_def.v ?super ~covering ~procedures [ name ] in
  match peek st with
  | LBRACE, _ ->
    advance st;
    let* members = parse_members st ~path:[ name ] [] in
    Ok (def :: members)
  | _ -> Ok [ def ]

let parse_role st =
  let* role_name = ident st "a role name" in
  let* () = expect st COLON "':'" in
  let* target = ident st "a target class" in
  let* card = parse_opt_card st in
  Ok (Assoc_def.role ~card:(Option.value card ~default:Cardinality.any) role_name target)

let parse_attrs st =
  match peek st with
  | LBRACE, _ ->
    advance st;
    let rec go acc =
      match peek st with
      | RBRACE, _ ->
        advance st;
        Ok (List.rev acc)
      | IDENT _, _ ->
        let* attr_name = ident st "an attribute name" in
        let* () = expect st COLON "':'" in
        let* ty = parse_type st in
        let required = eat_keyword st "required" in
        go (Assoc_def.attr ~required attr_name ty :: acc)
      | got, line -> syntax_error line "an attribute or '}'" got
    in
    go []
  | _ -> Ok []

let parse_assoc st =
  let* name = ident st "an association name" in
  let* super =
    if eat_keyword st "isa" then
      let* s = ident st "a super association" in
      Ok (Some s)
    else Ok None
  in
  (* acyclic/covering in either order *)
  let acyclic = ref false and covering = ref false in
  let rec flags () =
    if eat_keyword st "acyclic" then begin
      acyclic := true;
      flags ()
    end
    else if eat_keyword st "covering" then begin
      covering := true;
      flags ()
    end
  in
  flags ();
  let* procedures = parse_procedures st in
  let* () = expect st LPAREN "'(' opening the role list" in
  let rec roles acc =
    let* r = parse_role st in
    match peek st with
    | COMMA, _ ->
      advance st;
      roles (r :: acc)
    | _ ->
      let* () = expect st RPAREN "')'" in
      Ok (List.rev (r :: acc))
  in
  let* roles = roles [] in
  let* attrs = parse_attrs st in
  if List.length roles < 2 then
    fail (Schema_violation (name ^ ": associations need at least two roles"))
  else
    Ok
      (Assoc_def.v ~attrs ~acyclic:!acyclic ?super ~covering:!covering
         ~procedures name roles)

let parse src =
  let* toks = lex src in
  let st = { toks } in
  let rec go classes assocs =
    match peek st with
    | EOF, _ -> Ok (List.rev classes, List.rev assocs)
    | IDENT "class", _ ->
      advance st;
      let* defs = parse_class st in
      go (List.rev_append defs classes) assocs
    | IDENT "assoc", _ ->
      advance st;
      let* a = parse_assoc st in
      go classes (a :: assocs)
    | got, line -> syntax_error line "'class' or 'assoc'" got
  in
  let* classes, assocs = go [] [] in
  Schema.of_defs classes assocs

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)
(* ------------------------------------------------------------------ *)

let print_card buf (c : Cardinality.t) =
  if not (Cardinality.equal c Cardinality.any) then
    Buffer.add_string buf (Printf.sprintf " [%s]" (Cardinality.to_string c))

let print_procedures buf = function
  | [] -> ()
  | ps -> Buffer.add_string buf (Printf.sprintf " procedures (%s)" (String.concat ", " ps))

let rec print_members schema buf indent cls_name =
  let children = Schema.own_children schema cls_name in
  List.iter
    (fun (c : Class_def.t) ->
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_string buf (Class_def.simple_name c);
      (match c.Class_def.content with
      | Some ty -> Buffer.add_string buf (" : " ^ Value_type.to_string ty)
      | None -> ());
      print_card buf c.Class_def.card;
      print_procedures buf c.Class_def.procedures;
      let name = Class_def.name c in
      if Schema.own_children schema name <> [] then begin
        Buffer.add_string buf " {\n";
        print_members schema buf (indent + 2) name;
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_string buf "}\n"
      end
      else Buffer.add_char buf '\n')
    children

let print schema =
  let buf = Buffer.create 512 in
  List.iter
    (fun (c : Class_def.t) ->
      Buffer.add_string buf ("class " ^ Class_def.name c);
      (match c.Class_def.super with
      | Some s -> Buffer.add_string buf (" isa " ^ s)
      | None -> ());
      if c.Class_def.covering then Buffer.add_string buf " covering";
      print_procedures buf c.Class_def.procedures;
      if Schema.own_children schema (Class_def.name c) <> [] then begin
        Buffer.add_string buf " {\n";
        print_members schema buf 2 (Class_def.name c);
        Buffer.add_string buf "}\n"
      end
      else Buffer.add_char buf '\n')
    (Schema.top_level_classes schema);
  Buffer.add_char buf '\n';
  List.iter
    (fun (a : Assoc_def.t) ->
      Buffer.add_string buf ("assoc " ^ a.Assoc_def.name);
      (match a.Assoc_def.super with
      | Some s -> Buffer.add_string buf (" isa " ^ s)
      | None -> ());
      if a.Assoc_def.acyclic then Buffer.add_string buf " acyclic";
      if a.Assoc_def.covering then Buffer.add_string buf " covering";
      print_procedures buf a.Assoc_def.procedures;
      Buffer.add_string buf " (";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (r : Assoc_def.role) ->
                let b = Buffer.create 16 in
                Buffer.add_string b (r.Assoc_def.role_name ^ " : " ^ r.Assoc_def.target);
                print_card b r.Assoc_def.card;
                Buffer.contents b)
              a.Assoc_def.roles));
      Buffer.add_char buf ')';
      (match a.Assoc_def.attrs with
      | [] -> Buffer.add_char buf '\n'
      | attrs ->
        Buffer.add_string buf " {\n";
        List.iter
          (fun (x : Assoc_def.attr) ->
            Buffer.add_string buf
              (Printf.sprintf "  %s : %s%s\n" x.Assoc_def.attr_name
                 (Value_type.to_string x.Assoc_def.attr_type)
                 (if x.Assoc_def.required then " required" else "")))
          attrs;
        Buffer.add_string buf "}\n"))
    (Schema.assocs schema);
  Buffer.contents buf
