type role = { role_name : string; target : string; card : Cardinality.t }

type attr = { attr_name : string; attr_type : Value_type.t; required : bool }

type t = {
  name : string;
  roles : role list;
  attrs : attr list;
  acyclic : bool;
  super : string option;
  covering : bool;
  procedures : string list;
}

let role ?(card = Cardinality.any) role_name target =
  { role_name; target; card }

let attr ?(required = false) attr_name attr_type =
  { attr_name; attr_type; required }

let v ?(attrs = []) ?(acyclic = false) ?super ?(covering = false)
    ?(procedures = []) name roles =
  if List.length roles < 2 then
    invalid_arg ("Assoc_def.v: association " ^ name ^ " needs at least 2 roles");
  let names = List.map (fun r -> r.role_name) roles in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg ("Assoc_def.v: duplicate role names in " ^ name);
  let anames = List.map (fun a -> a.attr_name) attrs in
  if List.length (List.sort_uniq String.compare anames) <> List.length anames
  then invalid_arg ("Assoc_def.v: duplicate attribute names in " ^ name);
  { name; roles; attrs; acyclic; super; covering; procedures }

let find_attr a n = List.find_opt (fun x -> String.equal x.attr_name n) a.attrs

let arity a = List.length a.roles

let find_role a n = List.find_opt (fun r -> String.equal r.role_name n) a.roles

let role_position a n =
  let rec go i = function
    | [] -> None
    | r :: _ when String.equal r.role_name n -> Some i
    | _ :: rs -> go (i + 1) rs
  in
  go 0 a.roles

let nth_role a i = List.nth a.roles i

let pp_role ppf r =
  Fmt.pf ppf "%s: %s %a" r.role_name r.target Cardinality.pp r.card

let pp ppf a =
  Fmt.pf ppf "@[<h>assoc %s(%a)%s%a%s@]" a.name
    (Fmt.list ~sep:(Fmt.any ", ") pp_role)
    a.roles
    (if a.acyclic then " ACYCLIC" else "")
    (fun ppf -> function
      | None -> ()
      | Some s -> Fmt.pf ppf " isa %s" s)
    a.super
    (if a.covering then " (covering)" else "")
