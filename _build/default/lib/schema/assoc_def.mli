(** Definition of an association (relationship class).

    An association relates top-level object classes through named roles,
    each with a participation cardinality. Fig. 2 of the paper: [Read]
    relates [Data] and [Action] in roles [from] and [by]; the [1..*] on
    the [Data] side means every [Data] object must eventually take part
    in at least one [Read] relationship.

    Associations may be generalized (Fig. 3: [Access] generalizes [Read]
    and [Write]); specialized associations correspond to their super
    {e positionally}: role [i] of the specialization refines role [i] of
    the super, and its target must be the super target or one of its
    specializations. The [ACYCLIC] attribute (on associations whose two
    roles range over one generalization hierarchy) forbids cycles, e.g.
    the [Contained] association imposing a tree structure on
    [Action]s. *)

type role = {
  role_name : string;
  target : string;  (** top-level class whose instances play this role *)
  card : Cardinality.t;
      (** how many relationships of this association (or any of its
          specializations) each target instance takes part in, in this
          role *)
}

type attr = {
  attr_name : string;
  attr_type : Value_type.t;
  required : bool;
      (** a required attribute that is still undefined is completeness
          information — reported, never enforced (Fig. 3's
          [NumberOfWrites 1..1] on [Write]) *)
}

type t = {
  name : string;
  roles : role list;  (** at least two *)
  attrs : attr list;
      (** attributes carried by every relationship of this association *)
  acyclic : bool;
  super : string option;  (** generalization over associations *)
  covering : bool;  (** covering condition — completeness information *)
  procedures : string list;
}

val v :
  ?attrs:attr list ->
  ?acyclic:bool ->
  ?super:string ->
  ?covering:bool ->
  ?procedures:string list ->
  string ->
  role list ->
  t
(** [v name roles]; raises [Invalid_argument] if fewer than two roles,
    duplicate role names, or duplicate attribute names. *)

val attr : ?required:bool -> string -> Value_type.t -> attr
(** [attr name ty] builds an attribute declaration ([required] defaults
    to [false]). *)

val find_attr : t -> string -> attr option
(** Own attributes only; {!Schema.resolve_attr} searches the
    generalization chain. *)

val role :
  ?card:Cardinality.t ->
  string ->
  string ->
  role
(** [role name target] builds a role; [card] defaults to [0..*]. *)

val arity : t -> int

val find_role : t -> string -> role option

val role_position : t -> string -> int option
(** Position of a role by name, for positional correspondence across a
    generalization hierarchy. *)

val nth_role : t -> int -> role

val pp : Format.formatter -> t -> unit
