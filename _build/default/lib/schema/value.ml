open Seed_util

type date = { year : int; month : int; day : int }

type t =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Date of date
  | Enum of string

let equal a b =
  match (a, b) with
  | String x, String y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Date x, Date y -> x = y
  | Enum x, Enum y -> String.equal x y
  | (String _ | Int _ | Float _ | Bool _ | Date _ | Enum _), _ -> false

let compare a b =
  let rank = function
    | String _ -> 0
    | Int _ -> 1
    | Float _ -> 2
    | Bool _ -> 3
    | Date _ -> 4
    | Enum _ -> 5
  in
  match (a, b) with
  | String x, String y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | Enum x, Enum y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let to_string = function
  | String s -> Printf.sprintf "%S" s
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Bool b -> string_of_bool b
  | Date d -> Printf.sprintf "%04d-%02d-%02d" d.year d.month d.day
  | Enum c -> c

let pp ppf v = Fmt.string ppf (to_string v)

let type_name = function
  | String _ -> "STRING"
  | Int _ -> "INT"
  | Float _ -> "FLOAT"
  | Bool _ -> "BOOL"
  | Date _ -> "DATE"
  | Enum _ -> "ENUM"

let days_in_month year month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 ->
    let leap = (year mod 4 = 0 && year mod 100 <> 0) || year mod 400 = 0 in
    if leap then 29 else 28
  | _ -> 0

let date year month day =
  if month < 1 || month > 12 || day < 1 || day > days_in_month year month then
    invalid_arg
      (Printf.sprintf "Value.date: not a calendar date: %d-%d-%d" year month
         day);
  Date { year; month; day }

let check ty v =
  let mismatch () =
    Seed_error.fail
      (Seed_error.Type_mismatch
         { expected = Value_type.to_string ty; got = type_name v })
  in
  match (ty, v) with
  | Value_type.String, String _
  | Value_type.Int, Int _
  | Value_type.Float, Float _
  | Value_type.Bool, Bool _
  | Value_type.Date, Date _ ->
    Ok ()
  | Value_type.Enum cases, Enum c ->
    if List.exists (String.equal c) cases then Ok ()
    else
      Seed_error.fail
        (Seed_error.Type_mismatch
           { expected = Value_type.to_string ty; got = "ENUM constant " ^ c })
  | (Value_type.String | Int | Float | Bool | Date | Enum _), _ -> mismatch ()
