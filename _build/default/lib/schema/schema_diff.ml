type change =
  | Class_added of string
  | Class_removed of string
  | Class_content_changed of { cls : string; from_ : string; to_ : string }
  | Class_card_changed of {
      cls : string;
      from_ : Cardinality.t;
      to_ : Cardinality.t;
    }
  | Class_super_changed of {
      cls : string;
      from_ : string option;
      to_ : string option;
    }
  | Class_covering_changed of { cls : string; covering : bool }
  | Assoc_added of string
  | Assoc_removed of string
  | Assoc_roles_changed of string
  | Assoc_attrs_changed of { assoc : string; grew : bool }
  | Assoc_card_changed of {
      assoc : string;
      role : string;
      from_ : Cardinality.t;
      to_ : Cardinality.t;
    }
  | Assoc_acyclic_changed of { assoc : string; acyclic : bool }
  | Assoc_super_changed of {
      assoc : string;
      from_ : string option;
      to_ : string option;
    }
  | Assoc_covering_changed of { assoc : string; covering : bool }

type compatibility = Compatible | Incompatible

let max_relaxed ~from_ ~to_ =
  (* to_'s maximum admits at least everything from_'s did *)
  match ((from_ : Cardinality.t), (to_ : Cardinality.t)) with
  | _, { max = None; _ } -> true
  | { max = None; _ }, _ -> false
  | { max = Some a; _ }, { max = Some b; _ } -> b >= a

let classify = function
  | Class_added _ | Assoc_added _ -> Compatible
  | Class_removed _ | Assoc_removed _ | Assoc_roles_changed _ -> Incompatible
  | Assoc_attrs_changed { grew; _ } -> if grew then Compatible else Incompatible
  | Class_content_changed _ -> Incompatible
  | Class_card_changed { from_; to_; _ } | Assoc_card_changed { from_; to_; _ }
    ->
    (* Minima are completeness information: tightening a minimum never
       invalidates stored data, it only makes it (more) incomplete. *)
    if max_relaxed ~from_ ~to_ then Compatible else Incompatible
  | Class_super_changed _ | Assoc_super_changed _ -> Incompatible
  | Class_covering_changed _ | Assoc_covering_changed _ ->
    (* Covering is a completeness condition only. *)
    Compatible
  | Assoc_acyclic_changed { acyclic; _ } ->
    if acyclic then Incompatible (* newly imposed structural constraint *)
    else Compatible

let content_name = function
  | None -> "(none)"
  | Some ty -> Value_type.to_string ty

let diff_class acc (o : Class_def.t) (n : Class_def.t) =
  let cls = Class_def.name o in
  let acc =
    if Option.equal Value_type.equal o.content n.content then acc
    else
      Class_content_changed
        { cls; from_ = content_name o.content; to_ = content_name n.content }
      :: acc
  in
  let acc =
    if Cardinality.equal o.card n.card then acc
    else Class_card_changed { cls; from_ = o.card; to_ = n.card } :: acc
  in
  let acc =
    if Option.equal String.equal o.super n.super then acc
    else Class_super_changed { cls; from_ = o.super; to_ = n.super } :: acc
  in
  if Bool.equal o.covering n.covering then acc
  else Class_covering_changed { cls; covering = n.covering } :: acc

let diff_assoc acc (o : Assoc_def.t) (n : Assoc_def.t) =
  let assoc = o.name in
  let same_shape =
    Assoc_def.arity o = Assoc_def.arity n
    && List.for_all2
         (fun (a : Assoc_def.role) (b : Assoc_def.role) ->
           String.equal a.role_name b.role_name
           && String.equal a.target b.target)
         o.roles n.roles
  in
  if not same_shape then Assoc_roles_changed assoc :: acc
  else
    let attrs_acc acc =
      if o.attrs = n.attrs then acc
      else
        let kept (x : Assoc_def.attr) =
          List.exists (fun (y : Assoc_def.attr) -> x = y) n.attrs
        in
        Assoc_attrs_changed { assoc; grew = List.for_all kept o.attrs } :: acc
    in
    let acc = attrs_acc acc in
    let acc =
      List.fold_left2
        (fun acc (a : Assoc_def.role) (b : Assoc_def.role) ->
          if Cardinality.equal a.card b.card then acc
          else
            Assoc_card_changed
              { assoc; role = a.role_name; from_ = a.card; to_ = b.card }
            :: acc)
        acc o.roles n.roles
    in
    let acc =
      if Bool.equal o.acyclic n.acyclic then acc
      else Assoc_acyclic_changed { assoc; acyclic = n.acyclic } :: acc
    in
    let acc =
      if Option.equal String.equal o.super n.super then acc
      else Assoc_super_changed { assoc; from_ = o.super; to_ = n.super } :: acc
    in
    if Bool.equal o.covering n.covering then acc
    else Assoc_covering_changed { assoc; covering = n.covering } :: acc

let diff old_ new_ =
  let changes = ref [] in
  let old_classes = Schema.classes old_ and new_classes = Schema.classes new_ in
  List.iter
    (fun (c : Class_def.t) ->
      let name = Class_def.name c in
      match Schema.find_class new_ name with
      | None -> changes := Class_removed name :: !changes
      | Some n -> changes := diff_class !changes c n)
    old_classes;
  List.iter
    (fun (c : Class_def.t) ->
      let name = Class_def.name c in
      if Schema.find_class old_ name = None then
        changes := Class_added name :: !changes)
    new_classes;
  List.iter
    (fun (a : Assoc_def.t) ->
      match Schema.find_assoc new_ a.name with
      | None -> changes := Assoc_removed a.name :: !changes
      | Some n -> changes := diff_assoc !changes a n)
    (Schema.assocs old_);
  List.iter
    (fun (a : Assoc_def.t) ->
      if Schema.find_assoc old_ a.name = None then
        changes := Assoc_added a.name :: !changes)
    (Schema.assocs new_);
  List.rev !changes

let compatible old_ new_ =
  List.for_all (fun c -> classify c = Compatible) (diff old_ new_)

let pp_opt ppf = function
  | None -> Fmt.string ppf "(none)"
  | Some s -> Fmt.string ppf s

let pp_change ppf = function
  | Class_added c -> Fmt.pf ppf "+ class %s" c
  | Class_removed c -> Fmt.pf ppf "- class %s" c
  | Class_content_changed { cls; from_; to_ } ->
    Fmt.pf ppf "~ class %s content: %s -> %s" cls from_ to_
  | Class_card_changed { cls; from_; to_ } ->
    Fmt.pf ppf "~ class %s cardinality: %a -> %a" cls Cardinality.pp from_
      Cardinality.pp to_
  | Class_super_changed { cls; from_; to_ } ->
    Fmt.pf ppf "~ class %s super: %a -> %a" cls pp_opt from_ pp_opt to_
  | Class_covering_changed { cls; covering } ->
    Fmt.pf ppf "~ class %s covering: %b" cls covering
  | Assoc_added a -> Fmt.pf ppf "+ assoc %s" a
  | Assoc_removed a -> Fmt.pf ppf "- assoc %s" a
  | Assoc_roles_changed a -> Fmt.pf ppf "~ assoc %s roles reshaped" a
  | Assoc_attrs_changed { assoc; grew } ->
    Fmt.pf ppf "~ assoc %s attributes %s" assoc
      (if grew then "extended" else "reshaped")
  | Assoc_card_changed { assoc; role; from_; to_ } ->
    Fmt.pf ppf "~ assoc %s role %s cardinality: %a -> %a" assoc role
      Cardinality.pp from_ Cardinality.pp to_
  | Assoc_acyclic_changed { assoc; acyclic } ->
    Fmt.pf ppf "~ assoc %s acyclic: %b" assoc acyclic
  | Assoc_super_changed { assoc; from_; to_ } ->
    Fmt.pf ppf "~ assoc %s super: %a -> %a" assoc pp_opt from_ pp_opt to_
  | Assoc_covering_changed { assoc; covering } ->
    Fmt.pf ppf "~ assoc %s covering: %b" assoc covering
