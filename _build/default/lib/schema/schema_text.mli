(** A textual schema language for SEED.

    The paper's figures define schemas graphically; this module gives
    them a concrete syntax so tools (and the [seed] CLI) can load a
    schema from a file. {!print} emits the same language, and
    [parse (print s)] reproduces [s].

    {v
    // the Fig. 3 schema
    class Thing covering {
      Description : STRING [0..1]
      Revised     : DATE   [0..1]
      Keywords    : STRING [0..8]
    }
    class Data isa Thing {
      Text [0..16] {
        Body     : STRING [1..1]
        Selector : STRING [0..1]
      }
    }
    class InputData isa Data
    class OutputData isa Data
    class Action isa Thing

    assoc Access covering (from : Data [0..*], by : Action [1..*])
    assoc Read isa Access (from : InputData, by : Action)
    assoc Write isa Access (to : OutputData, by : Action) {
      NumberOfWrites : INT required
      OnError : ENUM(abort,repeat)
    }
    assoc Contained acyclic (contained : Action [0..1], container : Action)
    v}

    Class members are sub-classes: a member with a value type is a leaf
    carrying instances of that type; a member with a body has further
    sub-classes; both may combine. Cardinalities default to [0..*].
    [procedures (p, q)] after a class, member or association header
    attaches procedures. Comments run from [//] to end of line. *)

val parse : string -> (Schema.t, Seed_util.Seed_error.t) result
(** Parse and validate a schema. Syntax errors are reported as
    [Schema_violation] with line information; the result is validated
    with {!Schema.validate}. *)

val print : Schema.t -> string
(** Canonical rendering; [parse (print s)] succeeds and is structurally
    equal to [s] (same classes, associations and revision 1). *)
