(** Types of values carried by leaf sub-objects.

    In Fig. 2 of the paper, class [Data.Text.Selector] has objects of
    type [STRING] as instances and class [Thing.Revised] (Fig. 3) has
    [DATE] instances. SEED value types are deliberately simple: the
    interesting structure lives in objects and relationships. *)

type t =
  | String
  | Int
  | Float
  | Bool
  | Date  (** calendar date, stored as (year, month, day) *)
  | Enum of string list
      (** closed set of symbolic constants, e.g. error-handling modes
          [(abort, repeat)] of Fig. 3 *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Upper-case schema rendering: [STRING], [INT], [ENUM(a,b)] ... *)

val of_string : string -> (t, Seed_util.Seed_error.t) result
(** Parses the {!to_string} rendering. *)
