lib/schema/schema_diff.mli: Cardinality Format Schema
