lib/schema/schema_text.mli: Schema Seed_util
