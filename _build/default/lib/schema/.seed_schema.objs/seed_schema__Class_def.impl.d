lib/schema/class_def.ml: Cardinality Fmt List String Value_type
