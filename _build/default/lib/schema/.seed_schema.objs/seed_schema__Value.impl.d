lib/schema/value.ml: Bool Float Fmt Int List Printf Seed_error Seed_util Stdlib String Value_type
