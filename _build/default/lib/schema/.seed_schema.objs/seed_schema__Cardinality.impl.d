lib/schema/cardinality.ml: Fmt Printf Seed_error Seed_util String
