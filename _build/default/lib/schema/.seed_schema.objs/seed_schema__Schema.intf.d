lib/schema/schema.mli: Assoc_def Class_def Format Seed_util
