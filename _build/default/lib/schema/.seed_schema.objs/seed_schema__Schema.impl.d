lib/schema/schema.ml: Assoc_def Class_def Fmt List Map Printf Seed_error Seed_util String
