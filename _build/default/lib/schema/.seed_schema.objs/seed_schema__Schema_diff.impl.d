lib/schema/schema_diff.ml: Assoc_def Bool Cardinality Class_def Fmt List Option Schema String Value_type
