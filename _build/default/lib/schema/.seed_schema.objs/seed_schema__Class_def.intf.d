lib/schema/class_def.mli: Cardinality Format Value_type
