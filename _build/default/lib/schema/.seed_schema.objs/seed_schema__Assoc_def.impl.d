lib/schema/assoc_def.ml: Cardinality Fmt List String Value_type
