lib/schema/assoc_def.mli: Cardinality Format Value_type
