lib/schema/cardinality.mli: Format Seed_util
