lib/schema/value.mli: Format Seed_util Value_type
