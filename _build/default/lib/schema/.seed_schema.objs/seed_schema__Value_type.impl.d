lib/schema/value_type.ml: Fmt List Printf Seed_error Seed_util String
