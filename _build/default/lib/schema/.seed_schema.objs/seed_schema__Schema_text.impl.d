lib/schema/schema_text.ml: Assoc_def Buffer Cardinality Class_def List Option Printf Schema Seed_error Seed_util String Value_type
