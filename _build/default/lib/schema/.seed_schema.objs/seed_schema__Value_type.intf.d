lib/schema/value_type.mli: Format Seed_util
