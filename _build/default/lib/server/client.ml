type t = {
  server : Server.t;
  client_name : string;
  mutable queue : Protocol.op list;  (* newest first *)
}

let connect server ~name = { server; client_name = name; queue = [] }

let name t = t.client_name

let checkout t names = Server.checkout t.server ~client:t.client_name ~names

let stage t op = t.queue <- op :: t.queue

let staged t = List.rev t.queue

let commit t =
  match Server.checkin t.server ~client:t.client_name (staged t) with
  | Ok () ->
    t.queue <- [];
    Ok ()
  | Error _ as e -> e

let abort t =
  t.queue <- [];
  Server.release t.server ~client:t.client_name

let retrieve t name_ =
  Seed_core.Database.find_object (Server.database t.server) name_
