(** A client of the central SEED server.

    Clients use the server for retrieval but accumulate their updates
    locally; {!commit} sends the staged operations to the server, which
    applies them in a single transaction (paper, §Discussion). *)

open Seed_util

type t

val connect : Server.t -> name:string -> t

val name : t -> string

val checkout : t -> string list -> (unit, Seed_error.t) result
(** Write-lock objects on the server for this client. *)

val stage : t -> Protocol.op -> unit
(** Queue an operation locally; nothing reaches the server yet. *)

val staged : t -> Protocol.op list

val commit : t -> (unit, Seed_error.t) result
(** Send the staged operations as one check-in. On success the queue is
    cleared and the locks released; on failure the queue and locks are
    kept so the client can amend and retry. *)

val abort : t -> unit
(** Drop the staged operations and release the locks. *)

val retrieve : t -> string -> Ident.t option
(** Lock-free retrieval by name through the server's database. *)
