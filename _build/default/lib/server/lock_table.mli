(** Central write locks on independent objects, by name.

    "Data that has been copied to a client for update has a write lock
    in the central database" (paper, §Discussion). Acquisition is
    all-or-nothing so two clients cannot deadlock on overlapping
    checkout sets. *)

type t

val create : unit -> t

val acquire :
  t -> client:string -> string list -> (unit, Seed_util.Seed_error.t) result
(** Lock every name for [client]; already holding a lock is fine;
    a name held by another client fails the whole acquisition with
    [Locked] (nothing is acquired). *)

val release_all : t -> client:string -> unit

val holder : t -> string -> string option

val held_by : t -> client:string -> string list
(** Names this client currently locks, sorted. *)

val covers :
  t -> client:string -> string list -> (unit, Seed_util.Seed_error.t) result
(** Check that [client] holds locks on all the given names. *)
