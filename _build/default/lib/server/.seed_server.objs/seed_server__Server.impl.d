lib/server/server.ml: Hashtbl Ident List Lock_table Printf Protocol Seed_core Seed_error Seed_util String
