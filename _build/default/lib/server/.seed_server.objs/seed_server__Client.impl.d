lib/server/client.ml: List Protocol Seed_core Server
