lib/server/server.mli: Protocol Schema Seed_core Seed_error Seed_schema Seed_util Version_id
