lib/server/protocol.ml: Fmt Printf Seed_schema String Value
