lib/server/client.mli: Ident Protocol Seed_error Seed_util Server
