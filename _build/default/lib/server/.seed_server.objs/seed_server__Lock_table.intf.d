lib/server/lock_table.mli: Seed_util
