lib/server/lock_table.ml: Hashtbl List Option Printf Seed_util String
