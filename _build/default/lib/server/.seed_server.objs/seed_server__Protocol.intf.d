lib/server/protocol.mli: Format Seed_schema Value
