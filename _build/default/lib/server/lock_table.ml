open Seed_util.Seed_error

type t = (string, string) Hashtbl.t

let create () : t = Hashtbl.create 32

let acquire t ~client names =
  let conflict =
    List.find_opt
      (fun n ->
        match Hashtbl.find_opt t n with
        | Some holder -> not (String.equal holder client)
        | None -> false)
      names
  in
  match conflict with
  | Some n ->
    fail (Locked { item = n; holder = Option.get (Hashtbl.find_opt t n) })
  | None ->
    List.iter (fun n -> Hashtbl.replace t n client) names;
    Ok ()

let release_all t ~client =
  let mine =
    Hashtbl.fold
      (fun n c acc -> if String.equal c client then n :: acc else acc)
      t []
  in
  List.iter (Hashtbl.remove t) mine

let holder t name = Hashtbl.find_opt t name

let held_by t ~client =
  Hashtbl.fold
    (fun n c acc -> if String.equal c client then n :: acc else acc)
    t []
  |> List.sort String.compare

let covers t ~client names =
  let missing =
    List.find_opt
      (fun n ->
        match Hashtbl.find_opt t n with
        | Some holder -> not (String.equal holder client)
        | None -> true)
      names
  in
  match missing with
  | None -> Ok ()
  | Some n ->
    (match Hashtbl.find_opt t n with
    | Some holder -> fail (Locked { item = n; holder })
    | None ->
      fail
        (Invalid_operation
           (Printf.sprintf "client %s has not checked out %s" client n)))
