open Seed_util
open Seed_error

type t = { path : string; mutable oc : out_channel option }

let magic = 0x53454544l (* "SEED" *)

let wrap_io f =
  try Ok (f ()) with
  | Sys_error m -> fail (Io_error m)
  | Unix.Unix_error (e, fn, arg) ->
    fail (Io_error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

let open_ path =
  wrap_io (fun () ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
      in
      { path; oc = Some oc })

let channel j =
  match j.oc with
  | Some oc -> Ok oc
  | None -> fail (Io_error ("journal closed: " ^ j.path))

let append j payload =
  let* oc = channel j in
  wrap_io (fun () ->
      let b = Buffer.create (String.length payload + 12) in
      Buffer.add_int32_le b magic;
      Buffer.add_int32_le b (Int32.of_int (String.length payload));
      Buffer.add_int32_le b (Crc32.digest payload);
      Buffer.add_string b payload;
      Buffer.output_buffer oc b;
      flush oc)

let sync j =
  let* oc = channel j in
  wrap_io (fun () ->
      flush oc;
      let fd = Unix.descr_of_out_channel oc in
      Unix.fsync fd)

let close j =
  match j.oc with
  | None -> ()
  | Some oc ->
    j.oc <- None;
    close_out_noerr oc

let path j = j.path

type scan_outcome = Done | Torn of string | Bad of string

let scan path =
  if not (Sys.file_exists path) then Ok ([], Done)
  else
    wrap_io (fun () ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let size = in_channel_length ic in
            let records = ref [] in
            let rec loop pos =
              if pos = size then Done
              else if size - pos < 12 then Torn "truncated frame header"
              else begin
                let hdr = really_input_string ic 12 in
                let m = String.get_int32_le hdr 0 in
                if m <> magic then Bad "bad magic"
                else
                  let len = Int32.to_int (String.get_int32_le hdr 4) in
                  let crc = String.get_int32_le hdr 8 in
                  if len < 0 then Bad "negative length"
                  else if size - pos - 12 < len then Torn "truncated payload"
                  else
                    let payload = really_input_string ic len in
                    if Crc32.digest payload <> crc then Bad "crc mismatch"
                    else begin
                      records := payload :: !records;
                      loop (pos + 12 + len)
                    end
              end
            in
            let outcome = loop 0 in
            (List.rev !records, outcome)))

let read_all path =
  let* records, outcome = scan path in
  match outcome with
  | Done | Torn _ | Bad _ ->
    (* A damaged tail only loses the records after the damage; recovery
       keeps the intact prefix, mirroring WAL semantics. *)
    Ok records

let read_all_strict path =
  let* records, outcome = scan path in
  match outcome with
  | Done -> Ok records
  | Torn m | Bad m -> fail (Corrupt ("journal " ^ path ^ ": " ^ m))

let truncate path =
  wrap_io (fun () ->
      let oc = open_out_gen [ Open_trunc; Open_creat; Open_binary ] 0o644 path in
      close_out oc)
