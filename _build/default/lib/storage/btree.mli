(** In-memory B-tree map.

    The storage engine's index structure: used for the name index
    (object name → item id) and the item directory. A classic B-tree of
    minimum degree [t = 16] (up to 31 keys per node), mutable, with
    ordered iteration and range scans — the operations SEED's
    retrieve-by-name interface and history navigation need.

    The implementation is generic over the key order so tests can
    cross-check it against [Stdlib.Map] with arbitrary key types. *)

module Make (Ord : Map.OrderedType) : sig
  type key = Ord.t

  type 'a t
  (** A mutable map from [key] to ['a]. *)

  val create : unit -> 'a t

  val length : 'a t -> int
  (** Number of bindings; O(1). *)

  val is_empty : 'a t -> bool

  val find : 'a t -> key -> 'a option

  val mem : 'a t -> key -> bool

  val insert : 'a t -> key -> 'a -> unit
  (** Adds or replaces the binding for [key]. *)

  val remove : 'a t -> key -> bool
  (** Removes the binding; returns whether it existed. *)

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  (** In ascending key order. *)

  val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  (** In ascending key order. *)

  val min_binding : 'a t -> (key * 'a) option
  val max_binding : 'a t -> (key * 'a) option

  val iter_range : ?lo:key -> ?hi:key -> (key -> 'a -> unit) -> 'a t -> unit
  (** [iter_range ~lo ~hi f t] visits bindings with [lo <= k <= hi] in
      ascending order; omitted bounds are unbounded. *)

  val to_list : 'a t -> (key * 'a) list
  (** Ascending association list. *)

  val of_list : (key * 'a) list -> 'a t

  val invariants_ok : 'a t -> bool
  (** Structural check used by the test suite: key ordering, node
      occupancy, and uniform leaf depth. *)
end
