(* Table-driven CRC-32 with the reflected IEEE polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc byte =
  let t = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xffl) in
  Int32.logxor t.(idx) (Int32.shift_right_logical crc 8)

let digest_sub ?(init = 0l) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.digest_sub";
  let crc = ref (Int32.lognot init) in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.get buf i))
  done;
  Int32.lognot !crc

let digest ?init s =
  digest_sub ?init (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
