(** Append-only journal with CRC-framed records.

    Record frame layout (little-endian):
    [magic u32 | payload length u32 | crc32(payload) u32 | payload].

    Recovery reads frames until end of file; a torn or corrupt tail
    (partial frame, bad magic, CRC mismatch) stops the scan at the last
    intact record — the standard write-ahead-log contract. *)

type t
(** An open journal, positioned for appending. *)

val magic : int32

val open_ : string -> (t, Seed_util.Seed_error.t) result
(** Opens (creating if necessary) the journal at [path] for appending. *)

val append : t -> string -> (unit, Seed_util.Seed_error.t) result
(** Appends one record and flushes it to the OS. *)

val sync : t -> (unit, Seed_util.Seed_error.t) result
(** fsync the journal file. *)

val close : t -> unit

val path : t -> string

val read_all : string -> (string list, Seed_util.Seed_error.t) result
(** Reads the longest intact prefix of records of the journal at [path],
    in append order. A missing file yields [[]]. Damage (torn tail, bad
    magic, CRC mismatch) stops the scan; the records before it are
    returned — the write-ahead-log recovery contract. *)

val read_all_strict : string -> (string list, Seed_util.Seed_error.t) result
(** Like {!read_all} but any malformed byte — including a torn tail —
    is an error. Used by tests. *)

val truncate : string -> (unit, Seed_util.Seed_error.t) result
(** Empties the journal at [path] (after a snapshot compaction). *)
