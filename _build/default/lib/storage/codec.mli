(** Binary encoding primitives for the storage layer.

    Little-endian, length-prefixed, with variable-length integers
    (LEB128) for compactness — item ids and version components are
    typically tiny. All SEED persistence (schema, items, version tree)
    is expressed in terms of these primitives. *)

module Writer : sig
  type t

  val create : ?initial_size:int -> unit -> t
  val contents : t -> string
  val length : t -> int

  val u8 : t -> int -> unit
  (** One byte; raises [Invalid_argument] outside [0..255]. *)

  val varint : t -> int -> unit
  (** Signed LEB128 (zig-zag). *)

  val i64 : t -> int64 -> unit
  (** Fixed 8 bytes, little-endian. *)

  val float : t -> float -> unit
  val bool : t -> bool -> unit

  val string : t -> string -> unit
  (** Varint length prefix followed by the raw bytes. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val pair : t -> (t -> 'a -> unit) -> (t -> 'b -> unit) -> 'a * 'b -> unit
end

module Reader : sig
  type t

  val of_string : string -> t

  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool

  val u8 : t -> (int, Seed_util.Seed_error.t) result
  val varint : t -> (int, Seed_util.Seed_error.t) result
  val i64 : t -> (int64, Seed_util.Seed_error.t) result
  val float : t -> (float, Seed_util.Seed_error.t) result
  val bool : t -> (bool, Seed_util.Seed_error.t) result
  val string : t -> (string, Seed_util.Seed_error.t) result

  val option :
    t ->
    (t -> ('a, Seed_util.Seed_error.t) result) ->
    ('a option, Seed_util.Seed_error.t) result

  val list :
    t ->
    (t -> ('a, Seed_util.Seed_error.t) result) ->
    ('a list, Seed_util.Seed_error.t) result

  val pair :
    t ->
    (t -> ('a, Seed_util.Seed_error.t) result) ->
    (t -> ('b, Seed_util.Seed_error.t) result) ->
    ('a * 'b, Seed_util.Seed_error.t) result

  val expect_end : t -> (unit, Seed_util.Seed_error.t) result
  (** Fails with [Corrupt] when trailing bytes remain. *)
end
