module Make (Ord : Map.OrderedType) = struct
  type key = Ord.t

  (* Classic CLRS B-tree of minimum degree [t_deg]. Slots hold options so
     no dummy key/value is ever fabricated. *)
  let t_deg = 16
  let max_keys = (2 * t_deg) - 1

  type 'a node = {
    mutable n : int;
    keys : key option array; (* length max_keys, valid [0..n) *)
    vals : 'a option array;
    kids : 'a node option array; (* length 2*t_deg, valid [0..n] *)
    mutable leaf : bool;
  }

  type 'a t = { mutable root : 'a node; mutable size : int }

  let mk_node leaf =
    {
      n = 0;
      keys = Array.make max_keys None;
      vals = Array.make max_keys None;
      kids = Array.make (2 * t_deg) None;
      leaf;
    }

  let create () = { root = mk_node true; size = 0 }

  let length t = t.size
  let is_empty t = t.size = 0

  let key_ nd i = Option.get nd.keys.(i)
  let val_ nd i = Option.get nd.vals.(i)
  let kid nd i = Option.get nd.kids.(i)

  (* First index [i] in [0..nd.n] with [keys.(i) >= k]; snd is whether
     [keys.(i) = k]. *)
  let find_slot nd k =
    let rec go lo hi =
      (* invariant: keys.(lo-1) < k <= keys.(hi) (with sentinels) *)
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Ord.compare (key_ nd mid) k < 0 then go (mid + 1) hi else go lo mid
    in
    let i = go 0 nd.n in
    (i, i < nd.n && Ord.compare (key_ nd i) k = 0)

  let rec find_node nd k =
    let i, found = find_slot nd k in
    if found then Some (val_ nd i)
    else if nd.leaf then None
    else find_node (kid nd i) k

  let find t k = find_node t.root k
  let mem t k = find t k <> None

  (* --- insertion ---------------------------------------------------- *)

  let split_child parent i =
    let child = kid parent i in
    let right = mk_node child.leaf in
    right.n <- t_deg - 1;
    for j = 0 to t_deg - 2 do
      right.keys.(j) <- child.keys.(j + t_deg);
      right.vals.(j) <- child.vals.(j + t_deg);
      child.keys.(j + t_deg) <- None;
      child.vals.(j + t_deg) <- None
    done;
    if not child.leaf then
      for j = 0 to t_deg - 1 do
        right.kids.(j) <- child.kids.(j + t_deg);
        child.kids.(j + t_deg) <- None
      done;
    let mid_key = child.keys.(t_deg - 1) and mid_val = child.vals.(t_deg - 1) in
    child.keys.(t_deg - 1) <- None;
    child.vals.(t_deg - 1) <- None;
    child.n <- t_deg - 1;
    (* shift parent's keys and children right to make room at [i] *)
    for j = parent.n downto i + 1 do
      parent.keys.(j) <- parent.keys.(j - 1);
      parent.vals.(j) <- parent.vals.(j - 1)
    done;
    for j = parent.n + 1 downto i + 2 do
      parent.kids.(j) <- parent.kids.(j - 1)
    done;
    parent.keys.(i) <- mid_key;
    parent.vals.(i) <- mid_val;
    parent.kids.(i + 1) <- Some right;
    parent.n <- parent.n + 1

  (* Returns [true] when a fresh binding was added (vs. replaced). *)
  let rec insert_nonfull nd k v =
    let i, found = find_slot nd k in
    if found then begin
      nd.vals.(i) <- Some v;
      false
    end
    else if nd.leaf then begin
      for j = nd.n downto i + 1 do
        nd.keys.(j) <- nd.keys.(j - 1);
        nd.vals.(j) <- nd.vals.(j - 1)
      done;
      nd.keys.(i) <- Some k;
      nd.vals.(i) <- Some v;
      nd.n <- nd.n + 1;
      true
    end
    else begin
      let i =
        if (kid nd i).n = max_keys then begin
          split_child nd i;
          let c = Ord.compare (key_ nd i) k in
          if c = 0 then -1 (* key surfaced to this node: replace here *)
          else if c < 0 then i + 1
          else i
        end
        else i
      in
      if i = -1 then begin
        let j, _ = find_slot nd k in
        nd.vals.(j) <- Some v;
        false
      end
      else insert_nonfull (kid nd i) k v
    end

  let insert t k v =
    let root = t.root in
    if root.n = max_keys then begin
      let new_root = mk_node false in
      new_root.kids.(0) <- Some root;
      t.root <- new_root;
      split_child new_root 0
    end;
    if insert_nonfull t.root k v then t.size <- t.size + 1

  (* --- deletion ----------------------------------------------------- *)

  let remove_from_leaf nd i =
    for j = i to nd.n - 2 do
      nd.keys.(j) <- nd.keys.(j + 1);
      nd.vals.(j) <- nd.vals.(j + 1)
    done;
    nd.keys.(nd.n - 1) <- None;
    nd.vals.(nd.n - 1) <- None;
    nd.n <- nd.n - 1

  let rec max_binding_node nd =
    if nd.leaf then (key_ nd (nd.n - 1), val_ nd (nd.n - 1))
    else max_binding_node (kid nd nd.n)

  let rec min_binding_node nd =
    if nd.leaf then (key_ nd 0, val_ nd 0)
    else min_binding_node (kid nd 0)

  (* Merge kid (i+1) and separator key i into kid i. *)
  let merge_children nd i =
    let left = kid nd i and right = kid nd (i + 1) in
    left.keys.(left.n) <- nd.keys.(i);
    left.vals.(left.n) <- nd.vals.(i);
    for j = 0 to right.n - 1 do
      left.keys.(left.n + 1 + j) <- right.keys.(j);
      left.vals.(left.n + 1 + j) <- right.vals.(j)
    done;
    if not left.leaf then
      for j = 0 to right.n do
        left.kids.(left.n + 1 + j) <- right.kids.(j)
      done;
    left.n <- left.n + 1 + right.n;
    for j = i to nd.n - 2 do
      nd.keys.(j) <- nd.keys.(j + 1);
      nd.vals.(j) <- nd.vals.(j + 1)
    done;
    for j = i + 1 to nd.n - 1 do
      nd.kids.(j) <- nd.kids.(j + 1)
    done;
    nd.keys.(nd.n - 1) <- None;
    nd.vals.(nd.n - 1) <- None;
    nd.kids.(nd.n) <- None;
    nd.n <- nd.n - 1

  let borrow_from_prev nd i =
    let child = kid nd i and left = kid nd (i - 1) in
    for j = child.n - 1 downto 0 do
      child.keys.(j + 1) <- child.keys.(j);
      child.vals.(j + 1) <- child.vals.(j)
    done;
    if not child.leaf then
      for j = child.n downto 0 do
        child.kids.(j + 1) <- child.kids.(j)
      done;
    child.keys.(0) <- nd.keys.(i - 1);
    child.vals.(0) <- nd.vals.(i - 1);
    if not child.leaf then child.kids.(0) <- left.kids.(left.n);
    nd.keys.(i - 1) <- left.keys.(left.n - 1);
    nd.vals.(i - 1) <- left.vals.(left.n - 1);
    left.keys.(left.n - 1) <- None;
    left.vals.(left.n - 1) <- None;
    left.kids.(left.n) <- None;
    left.n <- left.n - 1;
    child.n <- child.n + 1

  let borrow_from_next nd i =
    let child = kid nd i and right = kid nd (i + 1) in
    child.keys.(child.n) <- nd.keys.(i);
    child.vals.(child.n) <- nd.vals.(i);
    if not child.leaf then child.kids.(child.n + 1) <- right.kids.(0);
    nd.keys.(i) <- right.keys.(0);
    nd.vals.(i) <- right.vals.(0);
    for j = 0 to right.n - 2 do
      right.keys.(j) <- right.keys.(j + 1);
      right.vals.(j) <- right.vals.(j + 1)
    done;
    if not right.leaf then
      for j = 0 to right.n - 1 do
        right.kids.(j) <- right.kids.(j + 1)
      done;
    right.keys.(right.n - 1) <- None;
    right.vals.(right.n - 1) <- None;
    right.kids.(right.n) <- None;
    right.n <- right.n - 1;
    child.n <- child.n + 1

  (* Ensure kid i has at least t_deg keys; returns the (possibly shifted)
     child index to descend into. *)
  let fill nd i =
    if i > 0 && (kid nd (i - 1)).n >= t_deg then begin
      borrow_from_prev nd i;
      i
    end
    else if i < nd.n && (kid nd (i + 1)).n >= t_deg then begin
      borrow_from_next nd i;
      i
    end
    else if i < nd.n then begin
      merge_children nd i;
      i
    end
    else begin
      merge_children nd (i - 1);
      i - 1
    end

  let rec delete_node nd k =
    let i, found = find_slot nd k in
    if found then
      if nd.leaf then begin
        remove_from_leaf nd i;
        true
      end
      else if (kid nd i).n >= t_deg then begin
        let pk, pv = max_binding_node (kid nd i) in
        nd.keys.(i) <- Some pk;
        nd.vals.(i) <- Some pv;
        ignore (delete_node (kid nd i) pk);
        true
      end
      else if (kid nd (i + 1)).n >= t_deg then begin
        let sk, sv = min_binding_node (kid nd (i + 1)) in
        nd.keys.(i) <- Some sk;
        nd.vals.(i) <- Some sv;
        ignore (delete_node (kid nd (i + 1)) sk);
        true
      end
      else begin
        merge_children nd i;
        delete_node (kid nd i) k
      end
    else if nd.leaf then false
    else begin
      let i = if (kid nd i).n < t_deg then fill nd i else i in
      delete_node (kid nd i) k
    end

  let remove t k =
    let removed = delete_node t.root k in
    if removed then t.size <- t.size - 1;
    (* descending may merge the root's two children even when the key is
       absent, leaving an empty internal root *)
    if t.root.n = 0 && not t.root.leaf then t.root <- kid t.root 0;
    removed

  (* --- traversal ---------------------------------------------------- *)

  let rec iter_node f nd =
    if nd.leaf then
      for i = 0 to nd.n - 1 do
        f (key_ nd i) (val_ nd i)
      done
    else begin
      for i = 0 to nd.n - 1 do
        iter_node f (kid nd i);
        f (key_ nd i) (val_ nd i)
      done;
      iter_node f (kid nd nd.n)
    end

  let iter f t = iter_node f t.root

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f k v !acc) t;
    !acc

  let min_binding t = if is_empty t then None else Some (min_binding_node t.root)
  let max_binding t = if is_empty t then None else Some (max_binding_node t.root)

  let iter_range ?lo ?hi f t =
    let above_lo k =
      match lo with None -> true | Some l -> Ord.compare k l >= 0
    in
    let below_hi k =
      match hi with None -> true | Some h -> Ord.compare k h <= 0
    in
    let rec go nd =
      if nd.leaf then
        for i = 0 to nd.n - 1 do
          let k = key_ nd i in
          if above_lo k && below_hi k then f k (val_ nd i)
        done
      else
        for i = 0 to nd.n do
          (* visit child i when its key range can intersect [lo, hi]:
             keys of kid i lie strictly between keys (i-1) and i *)
          let child_may_match =
            (i = 0 || match hi with
              | None -> true
              | Some h -> Ord.compare (key_ nd (i - 1)) h < 0)
            && (i = nd.n || match lo with
                 | None -> true
                 | Some l -> Ord.compare (key_ nd i) l > 0)
          in
          if child_may_match then go (kid nd i);
          if i < nd.n then begin
            let k = key_ nd i in
            if above_lo k && below_hi k then f k (val_ nd i)
          end
        done
    in
    go t.root

  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  let of_list bindings =
    let t = create () in
    List.iter (fun (k, v) -> insert t k v) bindings;
    t

  (* --- structural checks (tests) ------------------------------------ *)

  let invariants_ok t =
    let ok = ref true in
    let check b = if not b then ok := false in
    let rec depth nd = if nd.leaf then 1 else 1 + depth (kid nd 0) in
    let d = depth t.root in
    let rec go nd level ~is_root =
      check (nd.n <= max_keys);
      if not is_root then check (nd.n >= t_deg - 1)
      else check (nd.leaf || nd.n >= 1);
      for i = 0 to nd.n - 2 do
        check (Ord.compare (key_ nd i) (key_ nd (i + 1)) < 0)
      done;
      if nd.leaf then check (level = d)
      else begin
        for i = 0 to nd.n do
          check (nd.kids.(i) <> None);
          go (kid nd i) (level + 1) ~is_root:false
        done;
        for i = nd.n + 1 to (2 * t_deg) - 1 do
          check (nd.kids.(i) = None)
        done
      end;
      for i = nd.n to max_keys - 1 do
        check (nd.keys.(i) = None && nd.vals.(i) = None)
      done
    in
    go t.root 1 ~is_root:true;
    let count = fold (fun _ _ n -> n + 1) t 0 in
    check (count = t.size);
    !ok
end
