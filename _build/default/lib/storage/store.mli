(** Snapshot + journal composition: the persistence engine.

    A store lives in a directory holding [snapshot.bin] and
    [journal.log]. The client supplies a pure fold over its own state:
    opening a store loads the snapshot (if any) and replays the journal
    records appended since; {!append} adds a record; {!compact} writes a
    fresh snapshot and truncates the journal. All payloads are opaque
    strings — {!Seed_core.Persist} owns the encoding. *)

type t

val open_dir :
  string -> (t * string option * string list, Seed_util.Seed_error.t) result
(** [open_dir dir] creates [dir] if needed and returns
    [(store, snapshot_payload, journal_records)] — everything needed to
    rebuild the client state. *)

val append : t -> string -> (unit, Seed_util.Seed_error.t) result
(** Durably appends a journal record. *)

val compact : t -> snapshot:string -> (unit, Seed_util.Seed_error.t) result
(** Atomically replaces the snapshot with [snapshot] and truncates the
    journal. After a crash between the two steps, replaying the old
    journal against the new snapshot must be harmless — SEED journal
    records are idempotent re-assignments, which guarantees this. *)

val journal_size : t -> int
(** Records appended since the last compaction (this process's view). *)

val close : t -> unit

val dir : t -> string
