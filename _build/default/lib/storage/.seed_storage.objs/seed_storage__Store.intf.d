lib/storage/store.mli: Seed_util
