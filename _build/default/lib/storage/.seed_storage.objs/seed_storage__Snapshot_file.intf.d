lib/storage/snapshot_file.mli: Seed_util
