lib/storage/btree.mli: Map
