lib/storage/journal.ml: Buffer Crc32 Fun Int32 List Printf Seed_error Seed_util String Sys Unix
