lib/storage/codec.ml: Buffer Char Int64 List Printf Seed_error Seed_util String Sys
