lib/storage/codec.mli: Seed_util
