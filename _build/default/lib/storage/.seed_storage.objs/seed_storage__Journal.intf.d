lib/storage/journal.mli: Seed_util
