lib/storage/store.ml: Filename Journal List Printf Seed_error Seed_util Snapshot_file Sys Unix
