lib/storage/btree.ml: Array List Map Option
