lib/storage/snapshot_file.ml: Buffer Crc32 Fun Int32 Journal Printf Seed_error Seed_util String Sys Unix
