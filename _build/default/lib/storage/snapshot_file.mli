(** Atomic whole-file snapshots.

    A snapshot is written to a temporary file in the same directory,
    fsync'd, then renamed over the target — so a crash mid-write never
    leaves a half-written snapshot behind. The payload is framed with
    the journal magic and a CRC so {!read} can detect corruption. *)

val write : string -> string -> (unit, Seed_util.Seed_error.t) result
(** [write path payload] atomically replaces [path]. *)

val read : string -> (string option, Seed_util.Seed_error.t) result
(** [read path] is [None] when no snapshot exists, [Some payload] when
    an intact one does, and [Corrupt] otherwise. *)
