open Seed_util
open Seed_error

module Writer = struct
  type t = Buffer.t

  let create ?(initial_size = 256) () = Buffer.create initial_size
  let contents = Buffer.contents
  let length = Buffer.length

  let u8 b n =
    if n < 0 || n > 255 then invalid_arg "Codec.Writer.u8";
    Buffer.add_char b (Char.chr n)

  let uvarint b n =
    (* n must be non-negative; emitted 7 bits at a time. *)
    let rec go n =
      if n land lnot 0x7f = 0 then Buffer.add_char b (Char.chr n)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let varint b n =
    (* zig-zag so negative ints stay short *)
    uvarint b ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let i64 b n = Buffer.add_int64_le b n
  let float b f = i64 b (Int64.bits_of_float f)
  let bool b v = u8 b (if v then 1 else 0)

  let string b s =
    uvarint b (String.length s);
    Buffer.add_string b s

  let option b f = function
    | None -> u8 b 0
    | Some v ->
      u8 b 1;
      f b v

  let list b f xs =
    uvarint b (List.length xs);
    List.iter (f b) xs

  let pair b fa fb (a, v) =
    fa b a;
    fb b v
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }
  let pos r = r.pos
  let remaining r = String.length r.src - r.pos
  let at_end r = remaining r = 0

  let corrupt what = fail (Corrupt ("codec: truncated " ^ what))

  let u8 r =
    if remaining r < 1 then corrupt "u8"
    else begin
      let c = Char.code r.src.[r.pos] in
      r.pos <- r.pos + 1;
      Ok c
    end

  let uvarint r =
    let rec go shift acc =
      let* c = u8 r in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then Ok acc
      else if shift > Sys.int_size - 8 then fail (Corrupt "codec: varint overflow")
      else go (shift + 7) acc
    in
    go 0 0

  let varint r =
    let* z = uvarint r in
    Ok ((z lsr 1) lxor (-(z land 1)))

  let i64 r =
    if remaining r < 8 then corrupt "i64"
    else begin
      let v = String.get_int64_le r.src r.pos in
      r.pos <- r.pos + 8;
      Ok v
    end

  let float r =
    let* bits = i64 r in
    Ok (Int64.float_of_bits bits)

  let bool r =
    let* c = u8 r in
    match c with
    | 0 -> Ok false
    | 1 -> Ok true
    | _ -> fail (Corrupt "codec: bad bool tag")

  let string r =
    let* len = uvarint r in
    if len < 0 || remaining r < len then corrupt "string"
    else begin
      let s = String.sub r.src r.pos len in
      r.pos <- r.pos + len;
      Ok s
    end

  let option r f =
    let* tag = u8 r in
    match tag with
    | 0 -> Ok None
    | 1 ->
      let* v = f r in
      Ok (Some v)
    | _ -> fail (Corrupt "codec: bad option tag")

  let list r f =
    let* n = uvarint r in
    if n < 0 || n > remaining r then corrupt "list length"
    else
      let rec go acc i =
        if i = 0 then Ok (List.rev acc)
        else
          let* v = f r in
          go (v :: acc) (i - 1)
      in
      go [] n

  let pair r fa fb =
    let* a = fa r in
    let* b = fb r in
    Ok (a, b)

  let expect_end r =
    if at_end r then Ok ()
    else fail (Corrupt (Printf.sprintf "codec: %d trailing bytes" (remaining r)))
end
