open Seed_util
open Seed_error

type t = {
  dir : string;
  mutable journal : Journal.t option;
  mutable records : int;
}

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let journal_path dir = Filename.concat dir "journal.log"

let ensure_dir dir =
  try
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok ()
      else fail (Io_error (dir ^ " exists and is not a directory"))
    else begin
      Unix.mkdir dir 0o755;
      Ok ()
    end
  with
  | Sys_error m -> fail (Io_error m)
  | Unix.Unix_error (e, fn, arg) ->
    fail (Io_error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

let open_dir dir =
  let* () = ensure_dir dir in
  let* snapshot = Snapshot_file.read (snapshot_path dir) in
  let* records = Journal.read_all (journal_path dir) in
  let* journal = Journal.open_ (journal_path dir) in
  Ok
    ( { dir; journal = Some journal; records = List.length records },
      snapshot,
      records )

let journal_of t =
  match t.journal with
  | Some j -> Ok j
  | None -> fail (Io_error ("store closed: " ^ t.dir))

let append t payload =
  let* j = journal_of t in
  let* () = Journal.append j payload in
  t.records <- t.records + 1;
  Ok ()

let compact t ~snapshot =
  let* j = journal_of t in
  Journal.close j;
  t.journal <- None;
  let* () = Snapshot_file.write (snapshot_path t.dir) snapshot in
  let* () = Journal.truncate (journal_path t.dir) in
  let* j = Journal.open_ (journal_path t.dir) in
  t.journal <- Some j;
  t.records <- 0;
  Ok ()

let journal_size t = t.records

let close t =
  match t.journal with
  | None -> ()
  | Some j ->
    t.journal <- None;
    Journal.close j

let dir t = t.dir
