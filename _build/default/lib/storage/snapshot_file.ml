open Seed_util
open Seed_error

let wrap_io f =
  try Ok (f ()) with
  | Sys_error m -> fail (Io_error m)
  | Unix.Unix_error (e, fn, arg) ->
    fail (Io_error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

let write path payload =
  wrap_io (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let b = Buffer.create (String.length payload + 12) in
          Buffer.add_int32_le b Journal.magic;
          Buffer.add_int32_le b (Int32.of_int (String.length payload));
          Buffer.add_int32_le b (Crc32.digest payload);
          Buffer.add_string b payload;
          Buffer.output_buffer oc b;
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc));
      Sys.rename tmp path)

let read path =
  if not (Sys.file_exists path) then Ok None
  else
    let* contents =
      wrap_io (fun () ->
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic)))
    in
    if String.length contents < 12 then
      fail (Corrupt ("snapshot " ^ path ^ ": too short"))
    else
      let m = String.get_int32_le contents 0 in
      let len = Int32.to_int (String.get_int32_le contents 4) in
      let crc = String.get_int32_le contents 8 in
      if m <> Journal.magic then fail (Corrupt ("snapshot " ^ path ^ ": bad magic"))
      else if len <> String.length contents - 12 then
        fail (Corrupt ("snapshot " ^ path ^ ": bad length"))
      else
        let payload = String.sub contents 12 len in
        if Crc32.digest payload <> crc then
          fail (Corrupt ("snapshot " ^ path ^ ": crc mismatch"))
        else Ok (Some payload)
