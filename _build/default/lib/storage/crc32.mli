(** CRC-32 (IEEE 802.3 polynomial), used to frame journal records so a
    torn tail or bit rot is detected during recovery. *)

val digest : ?init:int32 -> string -> int32
(** [digest s] is the CRC-32 checksum of [s]. [init] chains digests
    across buffers (default: fresh digest). *)

val digest_sub : ?init:int32 -> Bytes.t -> pos:int -> len:int -> int32
(** Checksum of a byte slice. *)
