(** Update events delivered to attached procedures.

    Attached procedures may be attached to any SEED schema element; they
    are executed when an item of the corresponding schema element is
    updated (paper, §Incomplete data). *)

open Seed_util
open Seed_schema

type t =
  | Created of Ident.t
  | Value_updated of { id : Ident.t; old_value : Value.t option }
  | Renamed of { id : Ident.t; old_name : string }
  | Reclassified of { id : Ident.t; from_ : string }
  | Deleted of Ident.t
  | Inherited of { pattern : Ident.t; inheritor : Ident.t }

val subject : t -> Ident.t
(** The item the event is about (the inheritor for [Inherited]). *)

val pp : Format.formatter -> t -> unit
