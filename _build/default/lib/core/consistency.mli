(** Consistency checking — performed on {e every} update.

    The paper partitions schema information (§Incomplete data): class and
    association membership, {e maximum} cardinalities, [ACYCLIC]
    conditions and attached procedures are consistency information and
    are enforced permanently; minimum cardinalities and covering
    conditions are completeness information and live in
    {!Completeness}.

    Pattern items are not checked for consistency unless they are
    inherited by a normal data item (paper, §Patterns): structural checks
    (schema-category existence, value types) always apply, but counting
    checks (maximum cardinalities, participation bounds, acyclicity) are
    evaluated in the context of each normal inheritor — at inheritance
    time and again on every pattern update.

    All functions are pure checks: they never mutate. {!Database} calls
    them before (or, for attached procedures, after) mutating. *)

open Seed_util
open Seed_schema

(** {1 Counting helpers (shared with {!Completeness})} *)

val count_children_role : View.t -> View.vitem -> role:string -> int
(** Live sub-objects with the given role, inherited ones included. *)

val count_participation : View.t -> Item.t -> assoc:string -> pos:int -> int
(** Relationships (inherited ones included) whose association is the
    given one or a specialization of it and that bind the object at the
    given role position. *)

val has_normal_context : View.t -> Item.t -> bool
(** True when the item (or the pattern sub-tree it belongs to) is visible
    in some normal object's context — i.e. counting checks apply. Normal
    items trivially qualify; pattern roots qualify iff some transitive
    inheritor is a live normal object. *)

val pattern_root_of : View.t -> Item.t -> Item.t option
(** The independent ancestor of a sub-object ([item] itself when
    independent); [None] for relationships or dangling parents. *)

val normal_inheritor_contexts : View.t -> Item.t -> Item.t list
(** The live normal objects whose expanded context exposes the given
    pattern item — exactly the contexts that must be re-validated when
    that pattern is updated. *)

(** {1 Update preconditions} *)

val check_new_object :
  View.t ->
  cls:string ->
  name:string ->
  (unit, Seed_error.t) result

val check_new_sub_object :
  View.t ->
  parent:Item.t ->
  role:string ->
  index:int option ->
  value:Value.t option ->
  (Class_def.t, Seed_error.t) result
(** Returns the resolved sub-class definition on success. *)

val check_new_relationship :
  View.t ->
  assoc:string ->
  endpoints:Item.t list ->
  pattern:bool ->
  (Assoc_def.t, Seed_error.t) result

val check_set_value :
  View.t -> Item.t -> Value.t option -> (unit, Seed_error.t) result

val check_set_rel_attr :
  View.t -> Item.t -> string -> Value.t option -> (unit, Seed_error.t) result

val check_rename : View.t -> Item.t -> string -> (unit, Seed_error.t) result

val check_reclassify_object :
  View.t -> Item.t -> to_:string -> (unit, Seed_error.t) result

val check_reclassify_rel :
  View.t -> Item.t -> to_:string -> (unit, Seed_error.t) result

val check_inheritance :
  View.t -> pattern:Item.t -> inheritor:Item.t -> (unit, Seed_error.t) result

val check_delete : View.t -> Item.t -> (unit, Seed_error.t) result

val check_inheritor_context : View.t -> Item.t -> (unit, Seed_error.t) result
(** Re-validate one normal object's full context (own + inherited
    children counts, participation bounds, acyclicity) — used after a
    pattern with inheritors is updated. *)

val check_database : View.t -> (unit, Seed_error.t) result
(** Whole-database consistency sweep against the view's schema; used
    when the schema is replaced and after loading from storage. *)
