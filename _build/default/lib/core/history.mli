(** History retrieval and navigation.

    SEED defines additional operations for history retrieval and
    navigation, e.g. "find all versions of object ['AlarmHandler'],
    beginning with version 2.0" (paper, §Versions). *)

open Seed_util

type entry = {
  version : Version_id.t;
  state : Item.state;
  seq : int;  (** creation order of the version *)
}

val stamps_of : Database.t -> Ident.t -> entry list
(** Every saved version of an item, in version-creation order. These are
    the {e stored} states (the deltas); versions between two stamps
    resolve to the earlier stamp. *)

val versions_of : Database.t -> Ident.t -> ?from_:Version_id.t -> unit ->
  (entry list, Seed_error.t) result
(** Stamps of an item, optionally restricted to versions created at or
    after [from_] — the paper's "beginning with version 2.0". *)

val versions_of_object :
  Database.t -> string -> ?from_:Version_id.t -> unit ->
  (entry list, Seed_error.t) result
(** Same, addressing an independent object by name. The name is resolved
    in the current state first and then across history (an object
    renamed since keeps its identity). *)

val state_in : Database.t -> Ident.t -> Version_id.t ->
  (Item.state option, Seed_error.t) result
(** The item's resolved state in the view of the given version. *)

val changed_between :
  Database.t -> Version_id.t -> Version_id.t ->
  (Ident.t list, Seed_error.t) result
(** Items whose resolved state differs between two versions. *)

val version_path : Database.t -> Version_id.t -> Version_id.t list
(** Root-first chain of versions leading to the given one. *)

val pp_entry : Format.formatter -> entry -> unit
