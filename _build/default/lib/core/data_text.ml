open Seed_util
open Seed_schema
open Seed_error

(* ------------------------------------------------------------------ *)
(* Export                                                               *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let render_value = function
  | Value.String s -> escape_string s
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%h" f
  | Value.Bool b -> string_of_bool b
  | Value.Date d -> Printf.sprintf "%04d-%02d-%02d" d.Value.year d.Value.month d.Value.day
  | Value.Enum c -> c

let component (it : Item.t) =
  match it.Item.body with
  | Item.Dependent { role; index; _ } -> (
    match index with
    | Some i -> Printf.sprintf "%s[%d]" role i
    | None -> role)
  | Item.Independent | Item.Relationship -> "?"

let rec export_subs v buf indent (it : Item.t) =
  List.iter
    (fun (kid : Item.t) ->
      let pad = String.make indent ' ' in
      let value =
        match View.obj_state v kid with
        | Some { Item.value = Some value; _ } -> Some value
        | Some _ | None -> None
      in
      let kids = View.children v kid.Item.id in
      match (value, kids) with
      | Some value, [] ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s = %s\n" pad (component kid) (render_value value))
      | Some value, _ ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s = %s {\n" pad (component kid) (render_value value));
        export_subs v buf (indent + 2) kid;
        Buffer.add_string buf (pad ^ "}\n")
      | None, [] ->
        Buffer.add_string buf (Printf.sprintf "%s%s\n" pad (component kid))
      | None, _ ->
        Buffer.add_string buf (Printf.sprintf "%s%s {\n" pad (component kid));
        export_subs v buf (indent + 2) kid;
        Buffer.add_string buf (pad ^ "}\n"))
    (View.children v it.Item.id)

let export_object v buf ~pattern (it : Item.t) =
  let name =
    match View.full_name v it with
    | Some n -> n
    | None -> Ident.to_string it.Item.id
  in
  let cls = Option.value (View.class_path_of v it) ~default:"?" in
  Buffer.add_string buf (if pattern then "pattern " else "object ");
  Buffer.add_string buf (Printf.sprintf "%s : %s" name cls);
  (match View.obj_state v it with
  | Some { Item.value = Some value; _ } ->
    Buffer.add_string buf (" = " ^ render_value value)
  | Some _ | None -> ());
  let inherits =
    View.inherits_of v it
    |> List.filter_map (fun pid ->
           match Db_state.find_item (View.db v) pid with
           | Some p when View.live_pattern v p -> View.full_name v p
           | Some _ | None -> None)
  in
  if inherits <> [] then
    Buffer.add_string buf
      (Printf.sprintf " inherits (%s)" (String.concat ", " inherits));
  if View.children v it.Item.id <> [] then begin
    Buffer.add_string buf " {\n";
    export_subs v buf 2 it;
    Buffer.add_string buf "}\n"
  end
  else Buffer.add_char buf '\n'

let by_name v (a : Item.t) (b : Item.t) =
  compare (View.full_name v a) (View.full_name v b)

let export_rel v buf ~pattern (rel : Item.t) =
  match View.rel_state v rel with
  | None -> ()
  | Some rs ->
    let names =
      List.map
        (fun e ->
          match Db_state.find_item (View.db v) e with
          | Some it -> Option.value (View.full_name v it) ~default:(Ident.to_string e)
          | None -> Ident.to_string e)
        rs.Item.endpoints
    in
    Buffer.add_string buf
      (Printf.sprintf "%srel %s (%s)"
         (if pattern then "pattern " else "")
         rs.Item.assoc (String.concat ", " names));
    (match
       List.sort (fun (a, _) (b, _) -> String.compare a b) rs.Item.rel_attrs
     with
    | [] -> Buffer.add_char buf '\n'
    | attrs ->
      Buffer.add_string buf " {\n";
      List.iter
        (fun (n, value) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s = %s\n" n (render_value value)))
        attrs;
      Buffer.add_string buf "}\n")

let export_view v =
  let buf = Buffer.create 1024 in
  List.iter
    (export_object v buf ~pattern:false)
    (List.sort (by_name v) (View.all_objects v));
  List.iter
    (export_object v buf ~pattern:true)
    (List.sort (by_name v) (View.all_patterns v));
  Buffer.add_char buf '\n';
  let rels =
    View.all_rels v
    @ Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
          if it.Item.body = Item.Relationship && View.live_pattern v it then
            it :: acc
          else acc)
  in
  let endpoint_name e =
    match Db_state.find_item (View.db v) e with
    | Some it -> Option.value (View.full_name v it) ~default:(Ident.to_string e)
    | None -> Ident.to_string e
  in
  let keyed =
    List.map
      (fun (r : Item.t) ->
        let key =
          match View.rel_state v r with
          | Some rs ->
            ( rs.Item.assoc,
              List.map endpoint_name rs.Item.endpoints,
              rs.Item.rel_pattern )
          | None -> ("", [], false)
        in
        (key, r))
      rels
    |> List.sort compare
  in
  List.iter
    (fun ((_, _, pattern), r) -> export_rel v buf ~pattern r)
    keyed;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | EQUALS
  | COLON
  | COMMA
  | MINUS
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | EQUALS -> "'='"
  | COLON -> "':'"
  | COMMA -> "','"
  | MINUS -> "'-'"
  | EOF -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let lex src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let error msg =
    fail (Invalid_operation (Printf.sprintf "data text, line %d: %s" !line msg))
  in
  let rec go i =
    if i >= n then begin
      out := (EOF, !line) :: !out;
      Ok (List.rev !out)
    end
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then begin
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then error "unterminated string"
          else
            match src.[j] with
            | '"' ->
              out := (STRING (Buffer.contents buf), !line) :: !out;
              go (j + 1)
            | '\\' when j + 1 < n ->
              (match src.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | c -> Buffer.add_char buf c);
              str (j + 2)
            | '\n' -> error "newline in string literal"
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        str (i + 1)
      end
      else if c >= '0' && c <= '9' then begin
        (* number: int, float (with '.', 'e', 'x', 'p' for %h) *)
        let rec eat j =
          if
            j < n
            && ((src.[j] >= '0' && src.[j] <= '9')
               || src.[j] = '.' || src.[j] = 'e' || src.[j] = 'E'
               || src.[j] = 'x' || src.[j] = 'p' || src.[j] = 'P'
               || (src.[j] >= 'a' && src.[j] <= 'f')
               || (src.[j] >= 'A' && src.[j] <= 'F')
               || src.[j] = '+'
               || (src.[j] = '-' && j > i && (src.[j - 1] = 'e' || src.[j - 1] = 'E' || src.[j - 1] = 'p' || src.[j - 1] = 'P')))
          then eat (j + 1)
          else j
        in
        let j = eat i in
        let text = String.sub src i (j - i) in
        (match (int_of_string_opt text, float_of_string_opt text) with
        | Some k, _ ->
          out := (INT k, !line) :: !out;
          go j
        | None, Some f ->
          out := (FLOAT f, !line) :: !out;
          go j
        | None, None -> error (Printf.sprintf "bad number %S" text))
      end
      else if is_ident_char c then begin
        let rec eat j = if j < n && is_ident_char src.[j] then eat (j + 1) else j in
        let j = eat i in
        out := (IDENT (String.sub src i (j - i)), !line) :: !out;
        go j
      end
      else
        let simple t =
          out := (t, !line) :: !out;
          go (i + 1)
        in
        match c with
        | '{' -> simple LBRACE
        | '}' -> simple RBRACE
        | '(' -> simple LPAREN
        | ')' -> simple RPAREN
        | '[' -> simple LBRACKET
        | ']' -> simple RBRACKET
        | '=' -> simple EQUALS
        | ':' -> simple COLON
        | ',' -> simple COMMA
        | '-' -> simple MINUS
        | _ -> error (Printf.sprintf "unexpected character %C" c)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Parser (to an AST, then replayed)                                    *)
(* ------------------------------------------------------------------ *)

type sub_ast = {
  s_role : string;
  s_index : int option;
  s_value : Value.t option;
  s_children : sub_ast list;
}

type obj_ast = {
  o_name : string;
  o_cls : string;
  o_value : Value.t option;
  o_pattern : bool;
  o_inherits : string list;
  o_children : sub_ast list;
}

type rel_ast = {
  r_assoc : string;
  r_endpoints : string list;
  r_pattern : bool;
  r_attrs : (string * Value.t) list;
}

type stream = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let syntax_error line what got =
  fail
    (Invalid_operation
       (Printf.sprintf "data text, line %d: expected %s, found %s" line what
          (token_name got)))

let expect st tok what =
  let got, line = peek st in
  if got = tok then begin
    advance st;
    Ok ()
  end
  else syntax_error line what got

let ident st what =
  match peek st with
  | IDENT s, _ ->
    advance st;
    Ok s
  | got, line -> syntax_error line what got

let parse_value st =
  match peek st with
  | STRING s, _ ->
    advance st;
    Ok (Value.String s)
  | FLOAT f, _ ->
    advance st;
    Ok (Value.Float f)
  | MINUS, _ -> (
    advance st;
    match peek st with
    | INT n, _ ->
      advance st;
      Ok (Value.Int (-n))
    | FLOAT f, _ ->
      advance st;
      Ok (Value.Float (-.f))
    | got, line -> syntax_error line "a number after '-'" got)
  | INT a, _ -> (
    advance st;
    (* maybe a date: INT-INT-INT *)
    match peek st with
    | MINUS, _ -> (
      advance st;
      match peek st with
      | INT m, line -> (
        advance st;
        let* () = expect st MINUS "'-' in a date" in
        match peek st with
        | INT d, _ ->
          advance st;
          (try Ok (Value.date a m d)
           with Invalid_argument msg -> fail (Invalid_operation msg))
        | got, _ -> syntax_error line "a day" got)
      | got, line -> syntax_error line "a month" got)
    | _ -> Ok (Value.Int a))
  | IDENT "true", _ ->
    advance st;
    Ok (Value.Bool true)
  | IDENT "false", _ ->
    advance st;
    Ok (Value.Bool false)
  | IDENT c, _ ->
    advance st;
    Ok (Value.Enum c)
  | got, line -> syntax_error line "a value" got

let parse_opt_index st =
  match peek st with
  | LBRACKET, _ -> (
    advance st;
    match peek st with
    | INT i, _ ->
      advance st;
      let* () = expect st RBRACKET "']'" in
      Ok (Some i)
    | got, line -> syntax_error line "an index" got)
  | _ -> Ok None

let rec parse_subs st acc =
  match peek st with
  | RBRACE, _ ->
    advance st;
    Ok (List.rev acc)
  | IDENT _, _ ->
    let* s_role = ident st "a role" in
    let* s_index = parse_opt_index st in
    let* s_value =
      match peek st with
      | EQUALS, _ ->
        advance st;
        let* v = parse_value st in
        Ok (Some v)
      | _ -> Ok None
    in
    let* s_children =
      match peek st with
      | LBRACE, _ ->
        advance st;
        parse_subs st []
      | _ -> Ok []
    in
    parse_subs st ({ s_role; s_index; s_value; s_children } :: acc)
  | got, line -> syntax_error line "a role or '}'" got

let parse_name_list st =
  let* () = expect st LPAREN "'('" in
  let rec go acc =
    let* n = ident st "a name" in
    match peek st with
    | COMMA, _ ->
      advance st;
      go (n :: acc)
    | _ ->
      let* () = expect st RPAREN "')'" in
      Ok (List.rev (n :: acc))
  in
  go []

let parse_object st ~pattern =
  let* o_name = ident st "an object name" in
  let* () = expect st COLON "':'" in
  let* o_cls = ident st "a class" in
  let* o_value =
    match peek st with
    | EQUALS, _ ->
      advance st;
      let* v = parse_value st in
      Ok (Some v)
    | _ -> Ok None
  in
  let* o_inherits =
    if (match peek st with IDENT "inherits", _ -> true | _ -> false) then begin
      advance st;
      parse_name_list st
    end
    else Ok []
  in
  let* o_children =
    match peek st with
    | LBRACE, _ ->
      advance st;
      parse_subs st []
    | _ -> Ok []
  in
  Ok { o_name; o_cls; o_value; o_pattern = pattern; o_inherits; o_children }

let parse_attrs st =
  match peek st with
  | LBRACE, _ ->
    advance st;
    let rec go acc =
      match peek st with
      | RBRACE, _ ->
        advance st;
        Ok (List.rev acc)
      | IDENT _, _ ->
        let* n = ident st "an attribute" in
        let* () = expect st EQUALS "'='" in
        let* v = parse_value st in
        go ((n, v) :: acc)
      | got, line -> syntax_error line "an attribute or '}'" got
    in
    go []
  | _ -> Ok []

let parse_rel st ~pattern =
  let* r_assoc = ident st "an association" in
  let* r_endpoints = parse_name_list st in
  let* r_attrs = parse_attrs st in
  Ok { r_assoc; r_endpoints; r_pattern = pattern; r_attrs }

let parse src =
  let* toks = lex src in
  let st = { toks } in
  let rec go objs rels =
    match peek st with
    | EOF, _ -> Ok (List.rev objs, List.rev rels)
    | IDENT "object", _ ->
      advance st;
      let* o = parse_object st ~pattern:false in
      go (o :: objs) rels
    | IDENT "pattern", _ -> (
      advance st;
      match peek st with
      | IDENT "rel", _ ->
        advance st;
        let* r = parse_rel st ~pattern:true in
        go objs (r :: rels)
      | _ ->
        let* o = parse_object st ~pattern:true in
        go (o :: objs) rels)
    | IDENT "rel", _ ->
      advance st;
      let* r = parse_rel st ~pattern:false in
      go objs (r :: rels)
    | got, line -> syntax_error line "'object', 'pattern' or 'rel'" got
  in
  go [] []

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)
(* ------------------------------------------------------------------ *)

let rec create_subs db ~parent subs =
  iter_result
    (fun s ->
      let* id =
        Database.create_sub_object db ~parent ~role:s.s_role ?index:s.s_index
          ?value:s.s_value ()
      in
      create_subs db ~parent:id s.s_children)
    subs

let resolve_obj db name =
  match Database.find_object db name with
  | Some id -> Ok id
  | None -> (
    match Database.find_pattern db name with
    | Some id -> Ok id
    | None -> fail (Unknown_object name))

let import db src =
  let* objs, rels = parse src in
  (* objects (and their sub-trees) *)
  let* () =
    iter_result
      (fun o ->
        let* id =
          Database.create_object db ~cls:o.o_cls ~name:o.o_name
            ~pattern:o.o_pattern ()
        in
        let* () =
          match o.o_value with
          | None -> Ok ()
          | Some v -> Database.set_value db id (Some v)
        in
        create_subs db ~parent:id o.o_children)
      objs
  in
  (* inheritance *)
  let* () =
    iter_result
      (fun o ->
        iter_result
          (fun pname ->
            let* inheritor = resolve_obj db o.o_name in
            let* pattern = resolve_obj db pname in
            Database.inherit_pattern db ~pattern ~inheritor)
          o.o_inherits)
      objs
  in
  (* relationships *)
  iter_result
    (fun r ->
      let* endpoints = map_result (resolve_obj db) r.r_endpoints in
      let* rel =
        Database.create_relationship db ~assoc:r.r_assoc ~endpoints
          ~pattern:r.r_pattern ()
      in
      iter_result
        (fun (n, v) -> Database.set_rel_attr db rel n (Some v))
        r.r_attrs)
    rels
