open Seed_util
open Seed_schema
open Seed_error

module Name_index = Seed_storage.Btree.Make (String)

type proc = t -> Event.t -> (unit, Seed_error.t) result

and t = {
  mutable schema : Schema.t;
  mutable schemas : (int * Schema.t) list;
  items : Item.t Ident.Tbl.t;
  gen : Ident.Gen.t;
  name_index : Ident.t Name_index.t;
  children : Ident.t list ref Ident.Tbl.t;
  rels_of : Ident.t list ref Ident.Tbl.t;
  inheritors : Ident.t list ref Ident.Tbl.t;
  versions : Versioning.t;
  mutable current_base : Version_id.t option;
  mutable retrieval_version : Version_id.t option;
  mutable dirty_queue : Ident.t list;
  procedures : (string, proc) Hashtbl.t;
  mutable proc_depth : int;
  mutable transition_rules :
    (string * (t -> base:Version_id.t option -> (unit, Seed_error.t) result))
    list;
}

let create schema =
  {
    schema;
    schemas = [ (Schema.revision schema, schema) ];
    items = Ident.Tbl.create 256;
    gen = Ident.Gen.create ();
    name_index = Name_index.create ();
    children = Ident.Tbl.create 64;
    rels_of = Ident.Tbl.create 64;
    inheritors = Ident.Tbl.create 16;
    versions = Versioning.create ();
    current_base = None;
    retrieval_version = None;
    dirty_queue = [];
    procedures = Hashtbl.create 8;
    proc_depth = 0;
    transition_rules = [];
  }

let find_item t id = Ident.Tbl.find_opt t.items id

let find_item_res t id =
  match find_item t id with
  | Some it -> Ok it
  | None -> fail (Unknown_item (Ident.to_string id))

let fresh_id t = Ident.Gen.next t.gen

let multi_add tbl key v =
  match Ident.Tbl.find_opt tbl key with
  | Some cell -> cell := v :: !cell
  | None -> Ident.Tbl.replace tbl key (ref [ v ])

let multi_remove tbl key v =
  match Ident.Tbl.find_opt tbl key with
  | Some cell -> cell := List.filter (fun x -> not (Ident.equal x v)) !cell
  | None -> ()

let multi_get tbl key =
  match Ident.Tbl.find_opt tbl key with Some cell -> List.rev !cell | None -> []

let index_name t name id = Name_index.insert t.name_index name id
let unindex_name t name = ignore (Name_index.remove t.name_index name)

let add_item t (item : Item.t) =
  Ident.Tbl.replace t.items item.id item;
  (match item.body with
  | Item.Dependent { parent; _ } -> multi_add t.children parent item.id
  | Item.Independent -> (
    match Item.obj_state item with
    | Some { name = Some n; _ } -> index_name t n item.id
    | Some _ | None -> ())
  | Item.Relationship -> (
    match Item.rel_state item with
    | Some { endpoints; _ } ->
      List.iter (fun e -> multi_add t.rels_of e item.id) endpoints
    | None -> ()))

let add_loaded_item t (item : Item.t) =
  (* Like [add_item] but suitable for items loaded from storage: an item
     may exist only in history (current = None), in which case the
     relationship index must still cover its historical endpoints. Name
     and inheritor indexes are rebuilt wholesale afterwards. *)
  Ident.Tbl.replace t.items item.id item;
  (match item.body with
  | Item.Dependent { parent; _ } -> multi_add t.children parent item.id
  | Item.Independent -> ()
  | Item.Relationship ->
    let state =
      match item.current with
      | Some s -> Some s
      | None -> ( match item.history with (_, s) :: _ -> Some s | [] -> None)
    in
    (match state with
    | Some (Item.Rel { endpoints; _ }) ->
      List.iter (fun e -> multi_add t.rels_of e item.id) endpoints
    | Some (Item.Obj _) | None -> ()))

let remove_item t (item : Item.t) =
  Ident.Tbl.remove t.items item.id;
  (match item.body with
  | Item.Dependent { parent; _ } -> multi_remove t.children parent item.id
  | Item.Independent -> (
    match Item.obj_state item with
    | Some { name = Some n; _ } -> unindex_name t n
    | Some _ | None -> ())
  | Item.Relationship -> (
    match Item.rel_state item with
    | Some { endpoints; _ } ->
      List.iter (fun e -> multi_remove t.rels_of e item.id) endpoints
    | None -> ()));
  t.dirty_queue <- List.filter (fun i -> not (Ident.equal i item.id)) t.dirty_queue

let mark_dirty t (item : Item.t) =
  if not item.dirty then begin
    item.dirty <- true;
    t.dirty_queue <- item.id :: t.dirty_queue
  end

let take_dirty t =
  let ids = t.dirty_queue in
  t.dirty_queue <- [];
  List.filter_map
    (fun id ->
      match find_item t id with
      | Some it when it.Item.dirty -> Some it
      | Some _ | None -> None)
    (List.rev ids)

let clear_dirty t =
  List.iter
    (fun id ->
      match find_item t id with
      | Some it -> it.Item.dirty <- false
      | None -> ())
    t.dirty_queue;
  t.dirty_queue <- []

let children_ids t id = multi_get t.children id
let rels_ids t id = multi_get t.rels_of id
let inheritor_ids t id = multi_get t.inheritors id

let index_inheritor t ~pattern ~inheritor = multi_add t.inheritors pattern inheritor

let unindex_inheritor t ~pattern ~inheritor =
  multi_remove t.inheritors pattern inheritor

let iter_items t f = Ident.Tbl.iter (fun _ it -> f it) t.items

let fold_items t ~init ~f =
  Ident.Tbl.fold (fun _ it acc -> f acc it) t.items init

let rebuild_state_indexes t =
  (* name index *)
  let names = Name_index.to_list t.name_index in
  List.iter (fun (n, _) -> unindex_name t n) names;
  Ident.Tbl.reset t.inheritors;
  iter_items t (fun it ->
      match (it.Item.body, it.Item.current) with
      | Item.Independent, Some (Item.Obj o) when not o.Item.deleted ->
        (match o.Item.name with
        | Some n -> index_name t n it.Item.id
        | None -> ());
        List.iter
          (fun p -> index_inheritor t ~pattern:p ~inheritor:it.Item.id)
          o.Item.inherits
      | _ -> ())

let find_id_by_name t name = Name_index.find t.name_index name

let register_procedure t name p = Hashtbl.replace t.procedures name p

let find_procedure t name =
  match Hashtbl.find_opt t.procedures name with
  | Some p -> Ok p
  | None -> fail (Unknown_procedure name)

let schema_at_revision t rev =
  List.assoc_opt rev t.schemas
