(** Variant families on top of patterns (paper, §Patterns and Variants,
    Fig. 5).

    A variants family is a set of variants: sets of objects and
    relationships that have a part of their information in common (the
    common part) but differ in some other parts (the variant parts).
    The connections between the common part and the variant parts are
    established by pattern relationships; every variant inherits these
    patterns, so pattern semantics guarantee that all variant parts have
    the same relationships to the common part — which ordinary
    relationships could not assure.

    Variants are different from {e alternatives}: alternatives are
    coexisting versions of the database ({!Database.begin_alternative});
    variants express that some information consists of a common part and
    varying parts. *)

open Seed_util

val connect_common :
  Database.t ->
  pattern:Ident.t ->
  assoc:string ->
  pattern_role:string ->
  common:Ident.t ->
  (Ident.t, Seed_error.t) result
(** Create the pattern relationship wiring a pattern object to an object
    of the common part: [pattern] plays [pattern_role] of [assoc], the
    common object plays the other role. (Binary associations only — the
    shape of Fig. 5.) *)

val add_variant :
  Database.t ->
  member:Ident.t ->
  patterns:Ident.t list ->
  (unit, Seed_error.t) result
(** Enroll an object as a variant: it inherits every family pattern, and
    thereby all their relationships to the common part. *)

val remove_variant :
  Database.t ->
  member:Ident.t ->
  patterns:Ident.t list ->
  (unit, Seed_error.t) result

val members : View.t -> patterns:Ident.t list -> Item.t list
(** Objects inheriting {e all} the family patterns — the variants. *)

val common_of : View.t -> member:Item.t -> assoc:string -> Item.t list
(** The common-part objects a variant is connected to through inherited
    relationships of the given association. *)

val shares_common : View.t -> patterns:Ident.t list -> bool
(** True when every member has identical inherited connections to the
    common part — the invariant pattern semantics are meant to
    guarantee. Exposed so tests (and sceptical users) can observe it. *)
