open Seed_util
open Seed_schema

type diagnostic =
  | Missing_sub_objects of {
      id : Ident.t;
      subject : string;
      role : string;
      class_path : string;
      required : int;
      present : int;
    }
  | Missing_participation of {
      id : Ident.t;
      subject : string;
      assoc : string;
      role : string;
      required : int;
      present : int;
    }
  | Unspecialized_class of { id : Ident.t; subject : string; cls : string }
  | Unspecialized_assoc of { id : Ident.t; assoc : string }
  | Undefined_value of { id : Ident.t; subject : string; class_path : string }
  | Missing_attribute of { id : Ident.t; assoc : string; attr : string }

let pp_diagnostic ppf = function
  | Missing_sub_objects { subject; role; class_path; required; present; _ } ->
    Fmt.pf ppf "%s: needs at least %d %s (%s), has %d" subject required role
      class_path present
  | Missing_participation { subject; assoc; role; required; present; _ } ->
    Fmt.pf ppf "%s: needs at least %d %s relationship(s) in role %s, has %d"
      subject required assoc role present
  | Unspecialized_class { subject; cls; _ } ->
    Fmt.pf ppf "%s: still classified in covering generalization %s" subject cls
  | Unspecialized_assoc { id; assoc } ->
    Fmt.pf ppf "relationship %a: still classified in covering generalization %s"
      Ident.pp id assoc
  | Undefined_value { subject; class_path; _ } ->
    Fmt.pf ppf "%s: value of type %s still undefined" subject class_path
  | Missing_attribute { id; assoc; attr } ->
    Fmt.pf ppf "relationship %a: required %s attribute %s still undefined"
      Ident.pp id assoc attr

let subject_name view vi =
  match View.vitem_name view vi with
  | Some n -> n
  | None -> Ident.to_string vi.View.item.Item.id

(* Recursive structural completeness of a (v)item against its class
   path: minimum sub-object counts per role, undefined leaf values. *)
let rec check_components view (vi : View.vitem) ~cls acc =
  let schema = View.schema view in
  let kids = View.children_v view vi in
  let count_role role =
    List.length
      (List.filter
         (fun (v : View.vitem) ->
           match v.View.item.Item.body with
           | Item.Dependent d -> String.equal d.role role
           | Item.Independent | Item.Relationship -> false)
         kids)
  in
  let acc =
    List.fold_left
      (fun acc (role, (def : Class_def.t)) ->
        let present = count_role role in
        if Cardinality.meets_min def.card present then acc
        else
          Missing_sub_objects
            {
              id = vi.View.item.Item.id;
              subject = subject_name view vi;
              role;
              class_path = Class_def.name def;
              required = def.card.Cardinality.min;
              present;
            }
          :: acc)
      acc
      (Schema.effective_children schema cls)
  in
  (* undefined leaf values and recursion *)
  List.fold_left
    (fun acc (kid : View.vitem) ->
      match View.obj_state view kid.View.item with
      | None -> acc
      | Some ks ->
        let acc =
          match Schema.find_class schema ks.Item.cls with
          | Some def
            when def.Class_def.content <> None && ks.Item.value = None ->
            Undefined_value
              {
                id = kid.View.item.Item.id;
                subject = subject_name view kid;
                class_path = ks.Item.cls;
              }
            :: acc
          | Some _ | None -> acc
        in
        check_components view kid ~cls:ks.Item.cls acc)
    acc kids

let check_object view (obj : Item.t) =
  let schema = View.schema view in
  match View.obj_state view obj with
  | None -> []
  | Some st ->
    let name =
      match View.full_name view obj with
      | Some n -> n
      | None -> Ident.to_string obj.Item.id
    in
    let acc = [] in
    (* covering condition *)
    let acc =
      match Schema.find_class schema st.Item.cls with
      | Some def when def.Class_def.covering ->
        Unspecialized_class { id = obj.Item.id; subject = name; cls = st.Item.cls }
        :: acc
      | Some _ | None -> acc
    in
    (* undefined own value *)
    let acc =
      match Schema.find_class schema st.Item.cls with
      | Some def when def.Class_def.content <> None && st.Item.value = None ->
        Undefined_value
          { id = obj.Item.id; subject = name; class_path = st.Item.cls }
        :: acc
      | Some _ | None -> acc
    in
    (* participation minima *)
    let acc =
      List.fold_left
        (fun acc ((def : Assoc_def.t), pos, (role : Assoc_def.role)) ->
          let present =
            Consistency.count_participation view obj ~assoc:def.Assoc_def.name
              ~pos
          in
          if Cardinality.meets_min role.Assoc_def.card present then acc
          else
            Missing_participation
              {
                id = obj.Item.id;
                subject = name;
                assoc = def.Assoc_def.name;
                role = role.Assoc_def.role_name;
                required = role.Assoc_def.card.Cardinality.min;
                present;
              }
            :: acc)
        acc
        (Schema.participation_constraints schema ~cls:st.Item.cls)
    in
    (* component structure *)
    let acc = check_components view (View.vitem_real obj) ~cls:st.Item.cls acc in
    List.rev acc

let check_relationship view (rel : Item.t) =
  let schema = View.schema view in
  match View.rel_state view rel with
  | None -> []
  | Some rs ->
    let covering =
      match Schema.find_assoc schema rs.Item.assoc with
      | Some def when def.Assoc_def.covering ->
        [ Unspecialized_assoc { id = rel.Item.id; assoc = rs.Item.assoc } ]
      | Some _ | None -> []
    in
    let missing_attrs =
      List.filter_map
        (fun (a : Assoc_def.attr) ->
          if
            a.Assoc_def.required
            && not (List.mem_assoc a.Assoc_def.attr_name rs.Item.rel_attrs)
          then
            Some
              (Missing_attribute
                 {
                   id = rel.Item.id;
                   assoc = rs.Item.assoc;
                   attr = a.Assoc_def.attr_name;
                 })
          else None)
        (Schema.effective_attrs schema rs.Item.assoc)
    in
    covering @ missing_attrs

let check_database view =
  let objs = View.all_objects view in
  let rels = View.all_rels view in
  List.concat_map (check_object view) objs
  @ List.concat_map (check_relationship view) rels

let is_complete view = check_database view = []
