open Seed_util
open Seed_schema

type obj_state = {
  name : string option;
  cls : string;
  value : Value.t option;
  pattern : bool;
  inherits : Ident.t list;
  deleted : bool;
}

type rel_state = {
  assoc : string;
  endpoints : Ident.t list;
  rel_attrs : (string * Value.t) list;
  rel_pattern : bool;
  rel_deleted : bool;
}

type state = Obj of obj_state | Rel of rel_state

type body =
  | Independent
  | Dependent of { parent : Ident.t; role : string; index : int option }
  | Relationship

type t = {
  id : Ident.t;
  body : body;
  mutable current : state option;
  mutable dirty : bool;
  mutable history : (Version_id.t * state) list;
}

(* dirty starts false so that Db_state.mark_dirty both sets the flag and
   enqueues the item in the delta set *)
let make id body state =
  { id; body; current = Some state; dirty = false; history = [] }

let state_deleted = function
  | Obj o -> o.deleted
  | Rel r -> r.rel_deleted

let state_pattern = function
  | Obj o -> o.pattern
  | Rel r -> r.rel_pattern

let is_live t =
  match t.current with Some s -> not (state_deleted s) | None -> false

let is_live_normal t =
  match t.current with
  | Some s -> (not (state_deleted s)) && not (state_pattern s)
  | None -> false

let is_live_pattern t =
  match t.current with
  | Some s -> (not (state_deleted s)) && state_pattern s
  | None -> false

let obj_state t =
  match t.current with Some (Obj o) -> Some o | Some (Rel _) | None -> None

let rel_state t =
  match t.current with Some (Rel r) -> Some r | Some (Obj _) | None -> None

let stamp_at t vid =
  List.find_map
    (fun (v, s) -> if Version_id.equal v vid then Some s else None)
    t.history

let stamp t vid =
  (match t.current with
  | Some s -> t.history <- (vid, s) :: t.history
  | None -> ());
  t.dirty <- false

let drop_stamp t vid =
  t.history <- List.filter (fun (v, _) -> not (Version_id.equal v vid)) t.history

let kind_name t =
  match t.body with
  | Independent -> "object"
  | Dependent _ -> "sub-object"
  | Relationship -> "relationship"
