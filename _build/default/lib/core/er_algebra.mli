(** An entity-relationship algebra over SEED views.

    The paper cites Parent & Spaccapietra's ER algebra [10] among the
    sources of SEED's design; the prototype itself shipped without
    complex retrieval. This module supplies a small, set-semantics
    algebra in that spirit: relations are sets of object tuples, built
    from classes and associations of a {!View} and combined with
    selection, projection, product, join and the set operations.

    Entity-relationship operations are defined on {e existing}
    relationships only, so undefined (incomplete) items never produce
    phantom rows — the property the paper notes in §Manipulating vague
    and incomplete data. Inherited pattern relationships participate,
    like in every other retrieval operation. *)

open Seed_util

type row = Item.t list
(** A tuple of live objects. *)

type t
(** A relation: a fixed arity and a set of rows (duplicates removed,
    deterministic order). *)

val arity : t -> int
val rows : t -> row list
val cardinality : t -> int
val is_empty : t -> bool

(** {1 Sources} *)

val objects : View.t -> cls:string -> t
(** Unary: every live normal object classified in [cls] or one of its
    specializations. *)

val relationship : View.t -> assoc:string -> t
(** n-ary: one row per relationship of the association (or any of its
    specializations), endpoints in role order. Inherited pattern
    relationships appear with the pattern root substituted. *)

val of_rows : arity:int -> row list -> t
(** Escape hatch for tests; rows of the wrong arity are rejected with
    [Invalid_argument]. *)

(** {1 Operators} *)

val select : t -> (row -> bool) -> t

val select_obj : t -> col:int -> (Item.t -> bool) -> t
(** Selection on one column. *)

val project : t -> cols:int list -> t
(** Keep the given columns, in the given order (duplicates in [cols]
    are allowed); resulting duplicate rows collapse. *)

val product : t -> t -> t

val join : t -> int -> t -> int -> t
(** [join r i s j] — rows of [r ×] [s] whose [i]-th and [j]-th objects
    are the same, with [s]'s join column dropped. *)

val union : t -> t -> (t, Seed_error.t) result
(** Arity mismatch is an [Invalid_operation]. *)

val inter : t -> t -> (t, Seed_error.t) result
val diff : t -> t -> (t, Seed_error.t) result

(** {1 Convenience} *)

val column : t -> int -> Item.t list
(** Distinct objects of one column. *)

val names : View.t -> t -> string list list
(** Rows rendered as object names, for display and tests. *)
