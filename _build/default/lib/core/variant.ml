open Seed_util
open Seed_schema
open Seed_error

let connect_common db ~pattern ~assoc ~pattern_role ~common =
  let schema = Database.schema db in
  let* def = Schema.find_assoc_res schema assoc in
  let* () =
    if Assoc_def.arity def = 2 then Ok ()
    else
      fail
        (Invalid_operation
           "variant families connect through binary associations")
  in
  let* pos =
    match Assoc_def.role_position def pattern_role with
    | Some p -> Ok p
    | None -> fail (Unknown_role (assoc, pattern_role))
  in
  let endpoints = if pos = 0 then [ pattern; common ] else [ common; pattern ] in
  Database.create_relationship db ~assoc ~endpoints ~pattern:true ()

let add_variant db ~member ~patterns =
  iter_result
    (fun pattern -> Database.inherit_pattern db ~pattern ~inheritor:member)
    patterns

let remove_variant db ~member ~patterns =
  iter_result
    (fun pattern -> Database.uninherit_pattern db ~pattern ~inheritor:member)
    patterns

let members view ~patterns =
  match patterns with
  | [] -> []
  | first :: rest ->
    View.inheritors_of view first
    |> List.filter (fun (it : Item.t) ->
           List.for_all
             (fun p ->
               List.exists
                 (fun (inh : Item.t) -> Ident.equal inh.Item.id it.Item.id)
                 (View.inheritors_of view p))
             rest)

let common_of view ~member ~assoc =
  let schema = View.schema view in
  let db = View.db view in
  View.rels_v view member
  |> List.filter_map (fun (vr : View.vrel) ->
         match (vr.View.via, View.rel_state view vr.View.rel) with
         | Some _, Some rs
           when Schema.assoc_is_a schema ~sub:rs.Item.assoc ~super:assoc ->
           (* an inherited connection; the non-member endpoint is common *)
           List.find_opt
             (fun e -> not (Ident.equal e member.Item.id))
             vr.View.endpoints
           |> Option.map (Db_state.find_item db)
           |> Option.join
         | _ -> None)
  |> List.filter (View.live_normal view)
  |> List.sort_uniq (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)

let shares_common view ~patterns =
  let ms = members view ~patterns in
  (* each member's inherited connections, as (assoc, other-endpoint) sets *)
  let signature (m : Item.t) =
    View.rels_v view m
    |> List.filter_map (fun (vr : View.vrel) ->
           match (vr.View.via, View.rel_state view vr.View.rel) with
           | Some _, Some rs ->
             let others =
               List.filter
                 (fun e -> not (Ident.equal e m.Item.id))
                 vr.View.endpoints
             in
             Some (rs.Item.assoc, List.sort Ident.compare others)
           | _ -> None)
    |> List.sort compare
  in
  match ms with
  | [] | [ _ ] -> true
  | first :: rest ->
    let s = signature first in
    List.for_all (fun m -> signature m = s) rest
