(** Graphviz export of a view — the modified entity-relationship
    diagrams the paper draws (Fig. 1) as machine-generated [dot].

    Objects become nodes labelled with their composed name, class and
    leaf values; relationships become labelled edges. Patterns render
    dashed and grey; inherited (virtual) relationships render dashed
    with an ["inherited"] tail label, so Fig. 5-style variant wiring is
    visible. *)

val of_view : ?include_subs:bool -> ?include_patterns:bool -> View.t -> string
(** A complete [digraph]. [include_subs] (default [true]) lists
    sub-object values inside the node label; [include_patterns]
    (default [true]) also renders pattern objects and the inheritance
    structure. *)
