(** Completeness checking — performed only on demand.

    Minimum cardinalities and covering conditions for generalizations
    represent completeness information (paper, §Incomplete data): they
    describe the desired {e final} state of the data, so violating them
    never blocks an update. Formal detection of incompleteness is
    provided by these operations, which check the rules derivable from
    the completeness conditions in the schema.

    Patterns are not checked on their own; their contributions are
    counted inside each normal inheritor's context, via the pattern
    expansion of {!View}. *)

open Seed_util

type diagnostic =
  | Missing_sub_objects of {
      id : Ident.t;
      subject : string;  (** composed name of the incomplete object *)
      role : string;
      class_path : string;
      required : int;
      present : int;
    }
  | Missing_participation of {
      id : Ident.t;
      subject : string;
      assoc : string;
      role : string;
      required : int;
      present : int;
    }
  | Unspecialized_class of { id : Ident.t; subject : string; cls : string }
      (** the object sits in a covering generalized class and must
          eventually be re-classified into a specialization *)
  | Unspecialized_assoc of { id : Ident.t; assoc : string }
  | Undefined_value of { id : Ident.t; subject : string; class_path : string }
      (** a leaf sub-object exists but its value is still undefined *)
  | Missing_attribute of { id : Ident.t; assoc : string; attr : string }
      (** a required relationship attribute is still undefined (Fig. 3's
          [NumberOfWrites 1..1]) *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val check_object : View.t -> Item.t -> diagnostic list
(** All incompleteness of one live normal independent object, including
    its (inherited) sub-object tree and its participation minima. *)

val check_relationship : View.t -> Item.t -> diagnostic list

val check_database : View.t -> diagnostic list
(** Incompleteness report over the whole view, in object-name order. *)

val is_complete : View.t -> bool
(** [check_database view = []] — the data could now "serve as a basis
    for implementation" in the paper's sense. *)
