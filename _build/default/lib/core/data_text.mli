(** Textual import/export of database contents.

    One view of a database — objects with their sub-object trees and
    values, patterns, inheritance, relationships with attributes — as a
    human-readable text, so specifications can be exchanged, diffed and
    seeded from files:

    {v
    object Alarms : InputData {
      Description = "alarm store"
      Text[0] {
        Body = "Alarms are represented in an alarm display matrix"
        Selector = "Representation"
      }
      Keywords[0] = "Alarmhandling"
    }
    pattern Template : Data {
      Description = "std"
    }
    object Real : Data inherits (Template)

    rel Read (Alarms, Handler)
    rel Write (Alarms, Handler) {
      NumberOfWrites = 3
      OnError = repeat
    }
    pattern rel Access (Template, Handler)
    v}

    Values: quoted strings (with backslash escapes for quotes and
    newlines), integers, floats, [true]/[false], dates as [1986-02-05],
    enum constants as bare identifiers. Comments run from [//] to end
    of line.

    {!export_view} renders one version's view (versions themselves are
    not part of the format); {!import} replays a text into a database
    under the same schema, going through the full operational interface
    — so imports are consistency-checked like any other update. *)

val export_view : View.t -> string

val import : Database.t -> string -> (unit, Seed_util.Seed_error.t) result
(** Creates every object (patterns included), then the inheritance
    links, then the relationships. The first failing operation aborts
    the import; already-imported items remain (wrap in a fresh database
    or a server transaction for all-or-nothing semantics). *)
