open Seed_util
open Seed_schema

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_id (it : Item.t) = Printf.sprintf "n%d" (Ident.to_int it.Item.id)

let rec sub_lines v buf prefix (vi : View.vitem) =
  List.iter
    (fun (kid : View.vitem) ->
      let comp =
        match kid.View.item.Item.body with
        | Item.Dependent { role; index; _ } -> (
          match index with
          | Some i -> Printf.sprintf "%s[%d]" role i
          | None -> role)
        | Item.Independent | Item.Relationship -> "?"
      in
      let label = if prefix = "" then comp else prefix ^ "." ^ comp in
      (match View.obj_state v kid.View.item with
      | Some { Item.value = Some value; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "\\n%s = %s" (escape label)
             (escape (Value.to_string value)))
      | Some _ | None ->
        if View.children_v v kid = [] then
          Buffer.add_string buf (Printf.sprintf "\\n%s" (escape label)));
      sub_lines v buf label kid)
    (View.children_v v vi)

let object_node v buf (it : Item.t) =
  let name =
    match View.full_name v it with
    | Some n -> n
    | None -> Ident.to_string it.Item.id
  in
  let cls = Option.value (View.class_path_of v it) ~default:"?" in
  Buffer.add_string buf
    (Printf.sprintf "  %s [label=\"%s : %s" (node_id it) (escape name)
       (escape cls))

let of_view ?(include_subs = true) ?(include_patterns = true) v =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph seed {\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"sans-serif\"];\n";
  Buffer.add_string buf "  edge [fontname=\"sans-serif\"];\n";
  let emit_node ?(pattern = false) (it : Item.t) =
    object_node v buf it;
    if include_subs then sub_lines v buf "" (View.vitem_real it);
    Buffer.add_string buf "\"";
    if pattern then Buffer.add_string buf ", style=dashed, color=gray40";
    Buffer.add_string buf "];\n"
  in
  let objects = View.all_objects v in
  List.iter emit_node objects;
  if include_patterns then
    List.iter (fun p -> emit_node ~pattern:true p) (View.all_patterns v);
  (* real relationships *)
  let db = View.db v in
  List.iter
    (fun (rel : Item.t) ->
      match View.rel_state v rel with
      | Some rs -> (
        match
          List.map (Db_state.find_item db) rs.Item.endpoints
          |> List.filter_map Fun.id
        with
        | [ a; b ] ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s [label=\"%s\"%s];\n" (node_id a)
               (node_id b) (escape rs.Item.assoc)
               (if rs.Item.rel_pattern then ", style=dashed, color=gray40"
                else ""))
        | endpoints ->
          List.iteri
            (fun i e ->
              Buffer.add_string buf
                (Printf.sprintf "  %s -> %s [label=\"%s/%d\"];\n" (node_id e)
                   (node_id (List.hd endpoints))
                   (escape rs.Item.assoc) i))
            endpoints)
      | None -> ())
    (View.all_rels v
    @ (if include_patterns then
         (* pattern relationships, rendered dashed *)
         Db_state.fold_items db ~init:[] ~f:(fun acc it ->
             if it.Item.body = Item.Relationship && View.live_pattern v it then
               it :: acc
             else acc)
       else []));
  (* inherited (virtual) relationships and the inherits links *)
  if include_patterns then
    List.iter
      (fun (obj : Item.t) ->
        List.iter
          (fun (vr : View.vrel) ->
            match (vr.View.via, vr.View.endpoints) with
            | Some _, [ a; b ] ->
              let find e = Db_state.find_item db e in
              (match (find a, find b) with
              | Some ia, Some ib ->
                let label =
                  match View.rel_state v vr.View.rel with
                  | Some rs -> rs.Item.assoc
                  | None -> "?"
                in
                Buffer.add_string buf
                  (Printf.sprintf
                     "  %s -> %s [label=\"%s\", style=dashed, taillabel=\"inherited\"];\n"
                     (node_id ia) (node_id ib) (escape label))
              | _ -> ())
            | _ -> ())
          (View.rels_v v obj);
        List.iter
          (fun pid ->
            match Db_state.find_item db pid with
            | Some p when View.live_pattern v p ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  %s -> %s [style=dotted, color=gray40, label=\"inherits\"];\n"
                   (node_id obj) (node_id p))
            | Some _ | None -> ())
          (View.inherits_of v obj))
      objects;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
