open Seed_util
open Seed_schema
open Seed_error

type row = Item.t list

type t = { arity : int; rows : row list }

let row_key row = List.map (fun (it : Item.t) -> Ident.to_int it.Item.id) row

let normalize rows =
  let module M = Map.Make (struct
    type t = int list

    let compare = compare
  end) in
  let m =
    List.fold_left (fun m row -> M.add (row_key row) row m) M.empty rows
  in
  List.map snd (M.bindings m)

let make arity rows = { arity; rows = normalize rows }

let arity t = t.arity
let rows t = t.rows
let cardinality t = List.length t.rows
let is_empty t = t.rows = []

let objects view ~cls =
  let schema = View.schema view in
  let rows =
    View.all_objects view
    |> List.filter (fun it ->
           match View.obj_state view it with
           | Some o -> Schema.class_is_a schema ~sub:o.Item.cls ~super:cls
           | None -> false)
    |> List.map (fun it -> [ it ])
  in
  make 1 rows

let relationship view ~assoc =
  let schema = View.schema view in
  let db = View.db view in
  let arity =
    match Schema.find_assoc schema assoc with
    | Some def -> Assoc_def.arity def
    | None -> 2
  in
  (* real and inherited relationships, deduplicated by (rel, endpoints) *)
  let seen = Hashtbl.create 64 in
  let rows = ref [] in
  List.iter
    (fun obj ->
      List.iter
        (fun (vr : View.vrel) ->
          match View.rel_state view vr.View.rel with
          | Some rs
            when Schema.assoc_is_a schema ~sub:rs.Item.assoc ~super:assoc ->
            let key =
              ( Ident.to_int vr.View.rel.Item.id,
                List.map Ident.to_int vr.View.endpoints )
            in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              let endpoint_items =
                List.filter_map (Db_state.find_item db) vr.View.endpoints
              in
              if
                List.length endpoint_items = List.length vr.View.endpoints
                && List.for_all (View.live_normal view) endpoint_items
              then rows := endpoint_items :: !rows
            end
          | Some _ | None -> ())
        (View.rels_v view obj))
    (View.all_objects view);
  make arity !rows

let of_rows ~arity rows =
  if List.exists (fun r -> List.length r <> arity) rows then
    invalid_arg "Er_algebra.of_rows: arity mismatch";
  make arity rows

let select t p = make t.arity (List.filter p t.rows)

let select_obj t ~col p =
  select t (fun row ->
      match List.nth_opt row col with Some it -> p it | None -> false)

let project t ~cols =
  if List.exists (fun c -> c < 0 || c >= t.arity) cols then
    invalid_arg "Er_algebra.project: column out of range";
  make (List.length cols)
    (List.map (fun row -> List.map (fun c -> List.nth row c) cols) t.rows)

let product a b =
  make (a.arity + b.arity)
    (List.concat_map (fun ra -> List.map (fun rb -> ra @ rb) b.rows) a.rows)

let join a i b j =
  if i < 0 || i >= a.arity then invalid_arg "Er_algebra.join: left column";
  if j < 0 || j >= b.arity then invalid_arg "Er_algebra.join: right column";
  let rows =
    List.concat_map
      (fun ra ->
        let key = (List.nth ra i).Item.id in
        List.filter_map
          (fun rb ->
            if Ident.equal (List.nth rb j).Item.id key then
              Some (ra @ List.filteri (fun k _ -> k <> j) rb)
            else None)
          b.rows)
      a.rows
  in
  make (a.arity + b.arity - 1) rows

let same_arity a b op =
  if a.arity <> b.arity then
    fail
      (Invalid_operation
         (Printf.sprintf "%s of relations with arity %d and %d" op a.arity
            b.arity))
  else Ok ()

let union a b =
  let* () = same_arity a b "union" in
  Ok (make a.arity (a.rows @ b.rows))

let inter a b =
  let* () = same_arity a b "intersection" in
  let keys = List.map row_key b.rows in
  Ok (make a.arity (List.filter (fun r -> List.mem (row_key r) keys) a.rows))

let diff a b =
  let* () = same_arity a b "difference" in
  let keys = List.map row_key b.rows in
  Ok
    (make a.arity
       (List.filter (fun r -> not (List.mem (row_key r) keys)) a.rows))

let column t i =
  if i < 0 || i >= t.arity then invalid_arg "Er_algebra.column";
  t.rows
  |> List.map (fun row -> List.nth row i)
  |> List.sort_uniq (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)

let names view t =
  List.map
    (List.map (fun (it : Item.t) ->
         match View.full_name view it with
         | Some n -> n
         | None -> Ident.to_string it.Item.id))
    t.rows
