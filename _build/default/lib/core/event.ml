open Seed_util
open Seed_schema

type t =
  | Created of Ident.t
  | Value_updated of { id : Ident.t; old_value : Value.t option }
  | Renamed of { id : Ident.t; old_name : string }
  | Reclassified of { id : Ident.t; from_ : string }
  | Deleted of Ident.t
  | Inherited of { pattern : Ident.t; inheritor : Ident.t }

let subject = function
  | Created id
  | Value_updated { id; _ }
  | Renamed { id; _ }
  | Reclassified { id; _ }
  | Deleted id ->
    id
  | Inherited { inheritor; _ } -> inheritor

let pp ppf = function
  | Created id -> Fmt.pf ppf "created %a" Ident.pp id
  | Value_updated { id; _ } -> Fmt.pf ppf "value-updated %a" Ident.pp id
  | Renamed { id; old_name } ->
    Fmt.pf ppf "renamed %a (was %S)" Ident.pp id old_name
  | Reclassified { id; from_ } ->
    Fmt.pf ppf "reclassified %a (was %s)" Ident.pp id from_
  | Deleted id -> Fmt.pf ppf "deleted %a" Ident.pp id
  | Inherited { pattern; inheritor } ->
    Fmt.pf ppf "%a inherited pattern %a" Ident.pp inheritor Ident.pp pattern
