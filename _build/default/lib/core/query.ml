open Seed_util
open Seed_schema

type pred = View.t -> Item.t -> bool

let in_class cls v it =
  match View.obj_state v it with
  | Some o -> String.equal o.Item.cls cls
  | None -> false

let is_a cls v it =
  match View.obj_state v it with
  | Some o -> Schema.class_is_a (View.schema v) ~sub:o.Item.cls ~super:cls
  | None -> false

let name_is n v it =
  match View.full_name v it with Some m -> String.equal m n | None -> false

let name_matches f v it =
  match View.full_name v it with Some m -> f m | None -> false

let has_value f v it =
  match View.obj_state v it with
  | Some { Item.value = Some value; _ } -> f value
  | Some { Item.value = None; _ } | None -> false

let has_child ~role v it =
  View.child_v v (View.vitem_real it) ~role () <> None

let child_value ~role f v it =
  View.children_v v (View.vitem_real it)
  |> List.exists (fun (vi : View.vitem) ->
         match vi.View.item.Item.body with
         | Item.Dependent d when String.equal d.role role -> (
           match View.obj_state v vi.View.item with
           | Some { Item.value = Some value; _ } -> f value
           | Some _ | None -> false)
         | Item.Dependent _ | Item.Independent | Item.Relationship -> false)

let rel_is_a v ~assoc (rel : Item.t) =
  match View.rel_state v rel with
  | Some rs -> Schema.assoc_is_a (View.schema v) ~sub:rs.Item.assoc ~super:assoc
  | None -> false

let related ~assoc v it =
  View.rels_v v it
  |> List.exists (fun (vr : View.vrel) -> rel_is_a v ~assoc vr.View.rel)

let related_to ~assoc other v it =
  View.rels_v v it
  |> List.exists (fun (vr : View.vrel) ->
         rel_is_a v ~assoc vr.View.rel
         &&
         let occurrences =
           List.length (List.filter (Ident.equal other) vr.View.endpoints)
         in
         (* the object's own binding does not make it "related to
            itself"; a genuine self-loop binds it twice *)
         if Ident.equal other it.Item.id then occurrences >= 2
         else occurrences >= 1)

let is_incomplete v it = Completeness.check_object v it <> []

let ( &&& ) p q v it = p v it && q v it
let ( ||| ) p q v it = p v it || q v it
let not_ p v it = not (p v it)

let by_name v (a : Item.t) (b : Item.t) =
  match (View.full_name v a, View.full_name v b) with
  | Some x, Some y -> String.compare x y
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> Ident.compare a.Item.id b.Item.id

let select v p =
  View.all_objects v |> List.filter (p v) |> List.sort (by_name v)

let count v p = List.length (select v p)

let select_rels v ~assoc =
  View.all_rels v |> List.filter (rel_is_a v ~assoc)

let neighbors v (it : Item.t) ~assoc ~from_pos ~to_pos =
  let db = View.db v in
  View.rels_v v it
  |> List.filter_map (fun (vr : View.vrel) ->
         if not (rel_is_a v ~assoc vr.View.rel) then None
         else
           match
             (List.nth_opt vr.View.endpoints from_pos,
              List.nth_opt vr.View.endpoints to_pos)
           with
           | Some f, Some t when Ident.equal f it.Item.id -> (
             match Db_state.find_item db t with
             | Some other when View.live_normal v other -> Some other
             | Some _ | None -> None)
           | _ -> None)
  |> List.sort_uniq (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)

let reachable v it ~assoc ~from_pos ~to_pos =
  let seen = ref Ident.Set.empty in
  let order = ref [] in
  let rec go (node : Item.t) =
    List.iter
      (fun (next : Item.t) ->
        if not (Ident.Set.mem next.Item.id !seen) then begin
          seen := Ident.Set.add next.Item.id !seen;
          order := next :: !order;
          go next
        end)
      (neighbors v node ~assoc ~from_pos ~to_pos)
  in
  go it;
  List.rev !order
