(** Read access to a database state — current or any saved version —
    with pattern inheritance expanded.

    Retrieval of data from an old version is performed in the same way
    as retrieval from the current version (paper, §Versions): a [View.t]
    fixes the version once; every reader below then resolves item states
    through it.

    Pattern expansion implements the paper's inheritance semantics
    (§Patterns and Variants): retrieval operations view patterns {e as
    if} they were inserted in the context of the inheritors. Inherited
    information is synthesized at query time — nothing is materialized —
    so an update of a pattern automatically propagates to all
    inheritors, and inherited information has no update path of its
    own. *)

open Seed_util
open Seed_schema

type t

val current : Db_state.t -> t
(** The working state ("the current version"). *)

val at : Db_state.t -> Version_id.t -> t
(** The view of a saved version. *)

val retrieval : Db_state.t -> t
(** The view selected by [Database.select_version] (current by
    default). *)

val version : t -> Version_id.t option
val db : t -> Db_state.t
val schema : t -> Schema.t
(** The schema revision in force for this view's version. *)

(** {1 State resolution} *)

val state : t -> Item.t -> Item.state option
val live : t -> Item.t -> bool
val live_normal : t -> Item.t -> bool
val live_pattern : t -> Item.t -> bool
val obj_state : t -> Item.t -> Item.obj_state option
val rel_state : t -> Item.t -> Item.rel_state option

(** {1 Raw navigation (no pattern expansion)} *)

val find_object : t -> string -> Item.t option
(** Independent object by name, patterns included (callers filter). *)

val children : t -> Ident.t -> Item.t list
(** Live sub-objects, in creation order. *)

val child : t -> Ident.t -> role:string -> ?index:int -> unit -> Item.t option

val rels : t -> Ident.t -> Item.t list
(** Live relationships the object takes part in. *)

val inherits_of : t -> Item.t -> Ident.t list
(** Patterns directly inherited by an object. *)

val inheritors_of : t -> Ident.t -> Item.t list
(** Live objects directly inheriting the given pattern. *)

val transitive_patterns : t -> Item.t -> Item.t list
(** Patterns reachable through the inherits relation, cycle-safe,
    nearest first. *)

val full_name : t -> Item.t -> string option
(** Composed name: parent names joined with dots and [\[i\]] indices
    (paper, Fig. 1). [None] when some ancestor is not live. *)

val resolve_name : t -> string -> Item.t option
(** Inverse of {!full_name}: finds an object or sub-object by composed
    name. Does not traverse pattern inheritance. *)

val class_path_of : t -> Item.t -> string option
(** The class (independent) or class path (dependent) of an object. *)

(** {1 Pattern-expanded navigation} *)

type vitem = {
  item : Item.t;  (** the underlying real item *)
  via : (Ident.t * Ident.t) option;
      (** [Some (pattern_root, inheritor)] when the item is viewed through
          pattern inheritance *)
}

type vrel = {
  rel : Item.t;
  endpoints : Ident.t list;  (** with the pattern root substituted *)
  via : (Ident.t * Ident.t) option;
}

val vitem_real : Item.t -> vitem

val vitem_name : t -> vitem -> string option
(** Inherited items are named in the inheritor's context. *)

val children_v : t -> vitem -> vitem list
(** Live sub-objects including inherited ones. On a normal object this
    is what "the object's components" means to every retrieval
    operation. *)

val child_v : t -> vitem -> role:string -> ?index:int -> unit -> vitem option

val rels_v : t -> Item.t -> vrel list
(** Relationships of an object including inherited pattern
    relationships, with this object substituted for the pattern root.
    Virtual relationships that still reference an unsubstituted pattern
    endpoint are suppressed (they are not yet "in a normal context"). *)

val all_objects : t -> Item.t list
(** Live independent objects, patterns excluded. *)

val all_patterns : t -> Item.t list
(** Live independent pattern objects. *)

val all_rels : t -> Item.t list
(** Live normal relationships. *)
