lib/core/query.ml: Completeness Db_state Ident Item List Schema Seed_schema Seed_util String View
