lib/core/versioning.mli: Item Seed_error Seed_util Version_id
