lib/core/er_algebra.ml: Assoc_def Db_state Hashtbl Ident Item List Map Printf Schema Seed_error Seed_schema Seed_util View
