lib/core/persist.mli: Database Schema Seed_error Seed_schema Seed_util
