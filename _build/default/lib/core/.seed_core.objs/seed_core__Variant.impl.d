lib/core/variant.ml: Assoc_def Database Db_state Ident Item List Option Schema Seed_error Seed_schema Seed_util View
