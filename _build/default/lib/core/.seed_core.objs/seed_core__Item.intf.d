lib/core/item.mli: Ident Seed_schema Seed_util Value Version_id
