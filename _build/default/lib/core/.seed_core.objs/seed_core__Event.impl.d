lib/core/event.ml: Fmt Ident Seed_schema Seed_util Value
