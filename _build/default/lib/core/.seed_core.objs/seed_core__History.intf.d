lib/core/history.mli: Database Format Ident Item Seed_error Seed_util Version_id
