lib/core/db_state.ml: Event Hashtbl Ident Item List Schema Seed_error Seed_schema Seed_storage Seed_util String Version_id Versioning
