lib/core/completeness.ml: Assoc_def Cardinality Class_def Consistency Fmt Ident Item List Schema Seed_schema Seed_util String View
