lib/core/dot.ml: Buffer Db_state Fun Ident Item List Option Printf Seed_schema Seed_util String Value View
