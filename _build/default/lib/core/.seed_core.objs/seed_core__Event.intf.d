lib/core/event.mli: Format Ident Seed_schema Seed_util Value
