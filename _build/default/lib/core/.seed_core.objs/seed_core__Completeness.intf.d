lib/core/completeness.mli: Format Ident Item Seed_util View
