lib/core/consistency.ml: Assoc_def Cardinality Class_def Db_state Ident Item List Map Printf Schema Seed_error Seed_schema Seed_util String Value View
