lib/core/variant.mli: Database Ident Item Seed_error Seed_util View
