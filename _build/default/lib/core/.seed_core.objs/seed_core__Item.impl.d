lib/core/item.ml: Ident List Seed_schema Seed_util Value Version_id
