lib/core/versioning.ml: Int Item List Printf Seed_error Seed_util Version_id
