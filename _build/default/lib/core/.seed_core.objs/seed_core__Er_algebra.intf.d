lib/core/er_algebra.mli: Item Seed_error Seed_util View
