lib/core/view.ml: Db_state Ident Item List Path Printf Seed_util String Version_id Versioning
