lib/core/consistency.mli: Assoc_def Class_def Item Seed_error Seed_schema Seed_util Value View
