lib/core/data_text.mli: Database Seed_util View
