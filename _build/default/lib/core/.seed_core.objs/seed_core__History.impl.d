lib/core/history.ml: Database Db_state Fmt Ident Int Item List Printf Seed_error Seed_schema Seed_util String Version_id Versioning
