lib/core/view.mli: Db_state Ident Item Schema Seed_schema Seed_util Version_id
