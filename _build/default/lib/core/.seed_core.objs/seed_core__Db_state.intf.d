lib/core/db_state.mli: Event Hashtbl Ident Item Schema Seed_error Seed_schema Seed_storage Seed_util String Version_id Versioning
