lib/core/query.mli: Ident Item Seed_schema Seed_util Value View
