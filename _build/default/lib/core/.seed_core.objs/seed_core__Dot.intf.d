lib/core/dot.mli: View
