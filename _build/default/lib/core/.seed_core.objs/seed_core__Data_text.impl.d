lib/core/data_text.ml: Buffer Database Db_state Ident Item List Option Printf Seed_error Seed_schema Seed_util String Value View
