lib/core/database.mli: Completeness Db_state Format Ident Schema Seed_error Seed_schema Seed_util Value Version_id Versioning View
