bench/workloads.ml: Array Cardinality Class_def Printf Schema Seed_baseline Seed_core Seed_error Seed_schema Seed_util Spades_tool Value Value_type
