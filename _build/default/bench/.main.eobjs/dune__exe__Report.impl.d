bench/report.ml: Analyze Bechamel Bechamel_notty Benchmark Fmt Instance List Measure Notty_unix Printf String Test Time Toolkit Unix
