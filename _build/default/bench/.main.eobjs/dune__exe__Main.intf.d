bench/main.mli:
