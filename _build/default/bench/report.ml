(* Bechamel plumbing and plain-text tables for the non-timing metrics
   (bytes, operation counts) the experiments report. *)

open Bechamel
open Toolkit

let run_tests ?(quota = 0.5) tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let () =
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ monotonic_clock ]

let print_results window results =
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.output_image (Notty_unix.eol img)

let window =
  match Notty_unix.winsize Unix.stdout with
  | Some (w, h) -> { Bechamel_notty.w; h }
  | None -> { Bechamel_notty.w = 100; h = 1 }

let bench ?quota ~name tests =
  Fmt.pr "@.### %s@.@." name;
  let results = run_tests ?quota (Test.make_grouped ~name tests) in
  print_results window results

(* --- plain tables --------------------------------------------------- *)

let table ~title ~header rows =
  Fmt.pr "@.### %s@.@." title;
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    Fmt.pr "| %s |@."
      (String.concat " | "
         (List.map2
            (fun w c -> c ^ String.make (w - String.length c) ' ')
            widths row))
  in
  print_row header;
  Fmt.pr "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows

let human_bytes n =
  if n > 1_048_576 then Printf.sprintf "%.1f MiB" (float_of_int n /. 1_048_576.)
  else if n > 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%d B" n

(* wall-clock of a thunk, for macro measurements where bechamel's
   micro-benchmark harness does not fit (one-shot workloads) *)
let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ms t = Printf.sprintf "%.2f ms" (t *. 1000.)
