# Developer entry points. `make check` is the gate every change should
# pass before review: build, full test suite (including the randomized
# planner/scan equivalence properties), and formatting when the
# formatter is available.

.PHONY: check build test fmt bench bench-query bench-version

check: build test fmt

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping @fmt"; \
	fi

# regenerate the committed query-planner baseline
bench-query:
	dune exec bench/main.exe -- query

# regenerate the committed version-read baseline
bench-version:
	dune exec bench/main.exe -- version

# regenerate every committed benchmark baseline
bench: bench-query bench-version
