# Developer entry points. `make check` is the gate every change should
# pass before review: build, full test suite (including the randomized
# planner/scan equivalence properties and a fixed-seed smoke soak), and
# formatting when the formatter is available.

.PHONY: check build test fmt soak soak-ci soak-net bench bench-query \
	bench-text bench-version bench-txn bench-commit bench-mvcc bench-chaos \
	bench-server

check: build test fmt

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping @fmt"; \
	fi

# chaos soak: randomized op batches under crash-injected I/O, recover,
# verify. A fixed-seed 25-iteration smoke run is part of `make test`;
# this target is the larger configurable sweep. The MVCC stress run
# (reader domains against a committing writer, snapshots checked for
# internal consistency and replay equivalence) rides along at the same
# scale.
SOAK_ITERS ?= 200
SOAK_SEED ?= 42
soak:
	dune exec test/soak.exe -- --iters $(SOAK_ITERS) --seed $(SOAK_SEED)
	dune exec test/mvcc_stress.exe -- --iters $(SOAK_ITERS) --seed $(SOAK_SEED)

# the CI soak gate: fixed seed, 100 iterations — crash injection plus
# the read-fault (EINTR/bit-flip/short-read) pass on every iteration,
# the same chaos schedule against a 4-partition journal (crashes land
# between per-partition writes; recovery merges the partitions), and
# the multi-domain MVCC equivalence sweep
soak-ci:
	dune exec test/soak.exe -- --iters 100 --seed 42
	dune exec test/soak.exe -- --iters 50 --seed 42 --partitions 4
	dune exec test/mvcc_stress.exe -- --iters 100 --seed 42

# network chaos soak: simulated clients drive the server core through
# seeded frame-level fault injectors (drops, duplicates, bit flips,
# truncation, delays, disconnects, dead clients, clock jumps past the
# lease) over a durable store. Exactly-once check-in, lease reaping and
# store survival (fsck + fingerprint across reopen) are verified every
# iteration. A fixed-seed 8-iteration smoke run is part of `make test`;
# this is the long configurable sweep.
SOAK_NET_ITERS ?= 100
SOAK_NET_STEPS ?= 200
soak-net:
	dune exec test/chaos_net.exe -- --iters $(SOAK_NET_ITERS) \
	  --steps $(SOAK_NET_STEPS) --seed $(SOAK_SEED)
	dune exec test/chaos_net.exe -- --iters $(SOAK_NET_ITERS) \
	  --steps $(SOAK_NET_STEPS) --clients 8 --seed $(SOAK_SEED)

# regenerate the committed query-planner baseline
bench-query:
	dune exec bench/main.exe -- query

# regenerate the committed content-search baseline (trigram index vs
# full scan, plus index build and incremental-update cost)
bench-text:
	dune exec bench/main.exe -- text

# regenerate the committed version-read baseline
bench-version:
	dune exec bench/main.exe -- version

# regenerate the committed transaction/recovery baseline
bench-txn:
	dune exec bench/main.exe -- txn

# regenerate the committed group-commit baseline (txns/s and fsyncs/txn
# vs writer-domain count x journal-partition count)
bench-commit:
	dune exec bench/main.exe -- commit

# regenerate the committed MVCC baseline (snapshot-grab latency, reader
# domains vs a committing writer, single-threaded write-path cost)
bench-mvcc:
	dune exec bench/main.exe -- mvcc

# regenerate the committed chaos baseline (recovery time and data
# survival under injected corruption and read faults)
bench-chaos:
	dune exec bench/main.exe -- chaos

# regenerate the committed networked-server baseline (multi-client
# throughput/latency over TCP and graceful-drain wall time)
bench-server:
	dune exec bench/main.exe -- server

# regenerate every committed benchmark baseline
bench: bench-query bench-text bench-version bench-txn bench-commit \
	bench-mvcc bench-chaos bench-server
